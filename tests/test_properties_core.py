"""Hypothesis property-based tests on core invariants.

These generalize the exhaustive small-case checks in the unit tests to
arbitrary graph shapes: dependence inversion, interval well-formedness,
iteration-space consistency and validation round-trips.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.core.dependence import DependenceSpec, merge_intervals
from repro.core.validation import expected_inputs, task_output

dependence_types = st.sampled_from(list(DependenceType))

specs = st.builds(
    DependenceSpec,
    dependence_types,
    st.integers(min_value=1, max_value=24),  # width
    st.integers(min_value=1, max_value=12),  # height
    radix=st.integers(min_value=0, max_value=8),
    period=st.sampled_from([-1, 1, 2, 3]),
    fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32),
)


def all_points(s):
    for t in range(s.height):
        off = s.offset_at_timestep(t)
        for i in range(off, off + s.width_at_timestep(t)):
            yield t, i


@settings(max_examples=60, deadline=None)
@given(specs)
def test_intervals_well_formed(s):
    """Dependence intervals are sorted, disjoint, non-empty, and in range."""
    for t, i in all_points(s):
        for intervals in (s.dependencies(t, i), s.reverse_dependencies(t, i)):
            prev_hi = -2
            for lo, hi in intervals:
                assert lo <= hi
                assert lo > prev_hi + 1  # disjoint and non-adjacent (merged)
                assert 0 <= lo and hi < s.width
                prev_hi = hi


@settings(max_examples=60, deadline=None)
@given(specs)
def test_forward_backward_are_inverse(s):
    """j in deps(t, i)  <=>  i in rdeps(t-1, j), for every pattern/shape."""
    fwd = {
        (t, i, j)
        for t, i in all_points(s)
        for j in s.dependency_points(t, i)
    }
    bwd = {
        (t + 1, i, j)
        for t, j in all_points(s)
        for i in s.reverse_dependency_points(t, j)
    }
    assert fwd == bwd


@settings(max_examples=60, deadline=None)
@given(specs)
def test_dependencies_land_on_existing_points(s):
    for t, i in all_points(s):
        for j in s.dependency_points(t, i):
            assert s.contains_point(t - 1, j)
        for j in s.reverse_dependency_points(t, i):
            assert s.contains_point(t + 1, j)


@settings(max_examples=60, deadline=None)
@given(specs)
def test_num_dependencies_below_bound(s):
    bound = s.max_dependencies()
    for t, i in all_points(s):
        if t > 0:
            assert s.num_dependencies(t, i) <= bound


@settings(max_examples=60, deadline=None)
@given(specs)
def test_width_at_timestep_in_range(s):
    for t in range(s.height):
        w = s.width_at_timestep(t)
        off = s.offset_at_timestep(t)
        assert 1 <= w <= s.width
        assert 0 <= off and off + w <= s.width


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=-50, max_value=50), max_size=30))
def test_merge_intervals_roundtrip(points):
    merged = merge_intervals(points)
    covered = [p for lo, hi in merged for p in range(lo, hi + 1)]
    assert covered == sorted(set(points))


graphs = st.builds(
    TaskGraph,
    timesteps=st.integers(min_value=1, max_value=8),
    max_width=st.integers(min_value=1, max_value=12),
    dependence=dependence_types,
    radix=st.integers(min_value=0, max_value=5),
    fraction_connected=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    output_bytes_per_task=st.sampled_from([0, 1, 8, 16, 40]),
    seed=st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=60, deadline=None)
@given(graphs)
def test_execute_point_accepts_expected_inputs(g):
    """For any graph, the canonical inputs always validate and execution
    produces the canonical output."""
    pts = list(g.points())[:20]
    for t, i in pts:
        out = g.execute_point(t, i, expected_inputs(g, t, i))
        assert np.array_equal(out, task_output(g, t, i))


@settings(max_examples=40, deadline=None)
@given(graphs)
def test_totals_consistent_with_enumeration(g):
    assert g.total_tasks() == len(list(g.points()))
    assert g.total_dependencies() == sum(
        g.num_dependencies(t, i) for t, i in g.points()
    )


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_imbalance_multiplier_bounds(seed, iterations, imbalance):
    k = Kernel(
        kernel_type=KernelType.LOAD_IMBALANCE,
        iterations=iterations,
        imbalance=imbalance,
    )
    for t in range(5):
        for i in range(5):
            m = k.duration_multiplier(t, i, seed)
            assert 1.0 - imbalance <= m <= 1.0 or np.isclose(m, 1.0 - imbalance)
            assert 0 <= k.effective_iterations(t, i, seed) <= iterations
