"""Unit tests for command-line parameter parsing (paper Table 1)."""

import pytest

from repro.core import ConfigError, DependenceType, KernelType, parse_args
from repro.core.config import default_graph


class TestBasicFlags:
    def test_empty_args_yield_default_graph(self):
        app = parse_args([])
        assert len(app.graphs) == 1
        g = app.graphs[0]
        assert g.timesteps == 10 and g.max_width == 4
        assert g.dependence is DependenceType.TRIVIAL

    def test_steps_width(self):
        app = parse_args(["-steps", "100", "-width", "32"])
        assert app.graphs[0].timesteps == 100
        assert app.graphs[0].max_width == 32

    def test_type_and_radix(self):
        app = parse_args(["-type", "nearest", "-radix", "5"])
        g = app.graphs[0]
        assert g.dependence is DependenceType.NEAREST and g.radix == 5

    def test_kernel_and_iterations(self):
        app = parse_args(["-kernel", "compute_bound", "-iter", "2048"])
        k = app.graphs[0].kernel
        assert k.kernel_type is KernelType.COMPUTE_BOUND and k.iterations == 2048

    def test_output_and_scratch(self):
        app = parse_args(
            ["-kernel", "memory_bound", "-iter", "4", "-span", "64",
             "-output", "256", "-scratch", "4096"]
        )
        g = app.graphs[0]
        assert g.output_bytes_per_task == 256
        assert g.scratch_bytes_per_task == 4096
        assert g.kernel.span_bytes == 64

    def test_imbalance_and_seed(self):
        app = parse_args(
            ["-kernel", "load_imbalance", "-iter", "10", "-imbalance", "0.5",
             "-seed", "42"]
        )
        g = app.graphs[0]
        assert g.kernel.imbalance == 0.5 and g.seed == 42

    def test_random_pattern_flags(self):
        app = parse_args(
            ["-type", "random_nearest", "-radix", "7", "-period", "4",
             "-fraction", "0.3"]
        )
        g = app.graphs[0]
        assert g.period == 4 and g.fraction_connected == 0.3

    def test_wait_flag(self):
        app = parse_args(["-kernel", "busy_wait", "-wait", "12.5"])
        assert app.graphs[0].kernel.wait_us == 12.5


class TestMultipleGraphs:
    def test_and_separates_graphs(self):
        app = parse_args(["-steps", "5", "-and", "-and", "-and"])
        assert len(app.graphs) == 4
        assert [g.graph_index for g in app.graphs] == [0, 1, 2, 3]

    def test_and_inherits_previous_settings(self):
        """Matches the official CLI: -and starts from the previous graph."""
        app = parse_args(["-type", "stencil_1d", "-steps", "7", "-and", "-width", "9"])
        g0, g1 = app.graphs
        assert g1.dependence is DependenceType.STENCIL_1D
        assert g1.timesteps == 7
        assert g0.max_width == 4 and g1.max_width == 9

    def test_heterogeneous_graphs(self):
        app = parse_args(
            ["-type", "stencil_1d", "-and", "-type", "fft", "-kernel",
             "compute_bound", "-iter", "8"]
        )
        assert app.graphs[0].dependence is DependenceType.STENCIL_1D
        assert app.graphs[1].dependence is DependenceType.FFT
        assert app.graphs[0].kernel.kernel_type is KernelType.EMPTY


class TestAppFlags:
    def test_runtime_selection(self):
        app = parse_args(["-runtime", "threads", "-workers", "4"])
        assert app.runtime == "threads" and app.workers == 4

    def test_machine_flags(self):
        app = parse_args(["-nodes", "64", "-cores", "32"])
        assert app.nodes == 64 and app.cores_per_node == 32

    def test_no_validate(self):
        assert parse_args(["-no-validate"]).validate is False
        assert parse_args([]).validate is True

    def test_verbose(self):
        assert parse_args(["-verbose"]).verbose is True


class TestErrors:
    def test_unknown_flag(self):
        with pytest.raises(ConfigError, match="unknown flag"):
            parse_args(["-bogus"])

    def test_missing_value(self):
        with pytest.raises(ConfigError, match="missing its value"):
            parse_args(["-steps"])

    def test_non_integer_value(self):
        with pytest.raises(ConfigError, match="integer"):
            parse_args(["-steps", "ten"])

    def test_non_numeric_fraction(self):
        with pytest.raises(ConfigError, match="number"):
            parse_args(["-fraction", "x"])

    def test_bad_dependence_type(self):
        with pytest.raises(ValueError, match="unknown dependence"):
            parse_args(["-type", "hexagon"])

    def test_bad_kernel_type(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            parse_args(["-kernel", "quantum"])

    def test_invalid_graph_parameters_propagate(self):
        with pytest.raises(ConfigError):
            parse_args(["-steps", "0"])
        with pytest.raises(ConfigError):
            parse_args(["-width", "-3"])

    def test_invalid_worker_count(self):
        with pytest.raises(ConfigError, match="-workers"):
            parse_args(["-workers", "0"])

    def test_invalid_node_count(self):
        with pytest.raises(ConfigError, match="-nodes"):
            parse_args(["-nodes", "0"])


class TestDefaultGraph:
    def test_default_graph_is_valid(self):
        g = default_graph()
        assert g.total_tasks() > 0
        assert g.dependence is DependenceType.STENCIL_1D

    def test_default_graph_overrides(self):
        g = default_graph(max_width=16)
        assert g.max_width == 16
