"""Tests for the happens-before schedule audit (repro.check.hb_audit)."""

import pytest

from repro.check import audit_run, audit_trace
from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import available_runtimes, make_executor
from repro.runtimes._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    TraceEvent,
    TraceRecorder,
    tracing,
)
from tests.buggy_executor import DroppedEdgeExecutor, EarlyPublishExecutor


def make_graphs():
    """A stencil plus a nearest-radix graph, the acceptance configuration."""
    kernel = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2)
    return [
        TaskGraph(timesteps=8, max_width=4, dependence=DependenceType.STENCIL_1D,
                  kernel=kernel, output_bytes_per_task=16),
        TaskGraph(timesteps=6, max_width=5, dependence=DependenceType.NEAREST,
                  radix=3, kernel=kernel, output_bytes_per_task=16,
                  graph_index=1),
    ]


def codes(diags):
    return {d.code for d in diags}


# ----------------------------------------------------------------------
# Every real executor must audit clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("runtime", available_runtimes())
def test_every_executor_audits_clean(runtime):
    res = audit_run(make_executor(runtime, workers=2), make_graphs())
    assert res.ok, res.report()
    assert res.num_events > 0
    assert res.run.validated
    assert "Audit clean" in res.report()


# ----------------------------------------------------------------------
# The seeded-bug fixtures must be flagged despite validating clean
# ----------------------------------------------------------------------
def test_dropped_edge_is_flagged_but_validates():
    ex = DroppedEdgeExecutor()
    res = audit_run(ex, make_graphs())
    assert res.run.validated  # lucky bytes: validation cannot see the bug
    assert not res.ok
    assert "hb-missing-acquire" in codes(res.diagnostics)
    gi, t, i = ex.victim
    flagged = [d for d in res.diagnostics if d.code == "hb-missing-acquire"]
    assert any(f"graph {gi} (t={t}, i={i})" == d.location for d in flagged)
    assert all("dependence edge was dropped" in d.message for d in flagged)


def test_early_publish_is_flagged_but_validates():
    res = audit_run(EarlyPublishExecutor(), make_graphs())
    assert res.run.validated
    assert not res.ok
    assert "hb-early-publish" in codes(res.diagnostics)


# ----------------------------------------------------------------------
# Synthetic traces: deterministic unit coverage of each violation class
# ----------------------------------------------------------------------
def chain_graph():
    """Two-task chain: (0,0) -> (1,0)."""
    return TaskGraph(timesteps=2, max_width=1,
                     dependence=DependenceType.STENCIL_1D)


def trace(*steps):
    """Build a trace from (thread, kind, task[, source]) tuples."""
    return [
        TraceEvent(seq, step[0], step[1], step[2],
                   step[3] if len(step) > 3 else None)
        for seq, step in enumerate(steps)
    ]


P, C = (0, 0, 0), (0, 1, 0)  # producer and consumer of the chain


def test_clean_trace_has_no_findings():
    events = trace(
        (1, EV_START, P), (1, EV_FINISH, P), (1, EV_PUBLISH, P),
        (2, EV_START, C), (2, EV_ACQUIRE, C, P), (2, EV_FINISH, C),
    )
    assert audit_trace([chain_graph()], events) == []


def test_unpublished_read_detected():
    events = trace(
        (1, EV_START, P), (1, EV_FINISH, P),
        (2, EV_START, C), (2, EV_ACQUIRE, C, P), (2, EV_FINISH, C),
    )
    found = codes(audit_trace([chain_graph()], events))
    assert "hb-unpublished-read" in found
    assert "hb-missing-publish" in found  # P has a consumer, never published


def test_race_detected_across_threads():
    """A publish ordered before the producer's finish gives the consumer no
    happens-before edge from the completed kernel."""
    events = trace(
        (1, EV_START, P), (1, EV_PUBLISH, P),
        (2, EV_START, C), (2, EV_ACQUIRE, C, P),
        (1, EV_FINISH, P),
        (2, EV_FINISH, C),
    )
    found = codes(audit_trace([chain_graph()], events))
    assert "hb-race" in found
    assert "hb-early-publish" in found


def test_missing_events_detected():
    found = codes(audit_trace([chain_graph()], []))
    assert found == {"hb-missing-event"}


def test_duplicate_execution_detected():
    events = trace(
        (1, EV_START, P), (1, EV_FINISH, P), (1, EV_PUBLISH, P),
        (1, EV_START, P), (1, EV_FINISH, P),  # executed twice
        (1, EV_START, C), (1, EV_ACQUIRE, C, P), (1, EV_FINISH, C),
    )
    assert "hb-missing-event" in codes(audit_trace([chain_graph()], events))


def test_extra_acquire_detected():
    g = TaskGraph(timesteps=2, max_width=2, dependence=DependenceType.NO_COMM)
    other = (0, 0, 1)
    events = trace(
        (1, EV_START, (0, 0, 0)), (1, EV_FINISH, (0, 0, 0)),
        (1, EV_START, other), (1, EV_FINISH, other), (1, EV_PUBLISH, other),
        (1, EV_START, (0, 1, 0)),
        (1, EV_ACQUIRE, (0, 1, 0), (0, 0, 0)),   # the declared edge
        (1, EV_ACQUIRE, (0, 1, 0), other),       # a phantom one
        (1, EV_FINISH, (0, 1, 0)),
        (1, EV_START, (0, 1, 1)),
        (1, EV_ACQUIRE, (0, 1, 1), other),
        (1, EV_FINISH, (0, 1, 1)),
    )
    # no_comm: each task depends only on its own column
    found = audit_trace([g], events)
    assert "hb-extra-acquire" in codes(found)
    # the declared self-column edge of (1,0) was never published
    assert "hb-unpublished-read" in codes(found)


def test_late_acquire_detected():
    events = trace(
        (1, EV_START, P), (1, EV_FINISH, P), (1, EV_PUBLISH, P),
        (2, EV_START, C), (2, EV_FINISH, C), (2, EV_ACQUIRE, C, P),
    )
    assert "hb-late-acquire" in codes(audit_trace([chain_graph()], events))


def test_unknown_task_detected():
    stray = (7, 0, 0)
    events = trace(
        (1, EV_START, P), (1, EV_FINISH, P), (1, EV_PUBLISH, P),
        (2, EV_START, C), (2, EV_ACQUIRE, C, P), (2, EV_FINISH, C),
        (1, EV_START, stray), (1, EV_FINISH, stray),
    )
    assert "hb-unknown-task" in codes(audit_trace([chain_graph()], events))


# ----------------------------------------------------------------------
# Recorder plumbing
# ----------------------------------------------------------------------
def test_tracing_rejects_nesting():
    with tracing(TraceRecorder()):
        with pytest.raises(RuntimeError, match="already installed"):
            with tracing(TraceRecorder()):
                pass


def test_tracing_uninstalls_on_exit():
    from repro.runtimes._common import trace_recorder

    rec = TraceRecorder()
    with tracing(rec):
        assert trace_recorder() is rec
    assert trace_recorder() is None


def test_untraced_run_records_nothing():
    rec = TraceRecorder()
    make_executor("serial").run(make_graphs())
    assert len(rec) == 0
