"""Tests for simulator statistics collection."""

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.sim import (
    ARIES,
    IDEAL,
    MachineSpec,
    RuntimeModel,
    SimStats,
    simulate_with_stats,
)

M4 = MachineSpec(nodes=1, cores_per_node=4)
M2x4 = MachineSpec(nodes=2, cores_per_node=4)


def graph(pattern=DependenceType.STENCIL_1D, width=4, steps=10, iters=1000,
          imbalance=0.0, gi=0):
    ktype = KernelType.LOAD_IMBALANCE if imbalance else KernelType.COMPUTE_BOUND
    return TaskGraph(
        timesteps=steps, max_width=width, dependence=pattern,
        kernel=Kernel(kernel_type=ktype, iterations=iters, imbalance=imbalance),
        output_bytes_per_task=64, graph_index=gi,
    )


def model(execution="async", **kw):
    base = dict(name="m", execution=execution, task_overhead_s=0.0,
                dep_overhead_s=0.0, send_overhead_s=0.0)
    base.update(kw)
    return RuntimeModel(**base)


@pytest.mark.parametrize("execution", ["phased", "async"])
class TestCommonStats:
    def test_task_counts_cover_graph(self, execution):
        g = graph()
        _, stats = simulate_with_stats([g], M4, model(execution), IDEAL)
        assert sum(stats.tasks_per_core) == g.total_tasks()

    def test_balanced_graph_balanced_cores(self, execution):
        g = graph()
        _, stats = simulate_with_stats([g], M4, model(execution), IDEAL)
        assert stats.imbalance_factor == pytest.approx(1.0, abs=0.01)

    def test_utilization_near_one_when_compute_bound(self, execution):
        g = graph(iters=100000)
        _, stats = simulate_with_stats([g], M4, model(execution), IDEAL)
        assert stats.utilization == pytest.approx(1.0, rel=0.02)

    def test_utilization_low_when_latency_bound(self, execution):
        g = graph(width=8, steps=30, iters=10)
        _, stats = simulate_with_stats([g], M2x4, model(execution), ARIES)
        assert stats.utilization < 0.5

    def test_message_locality_split(self, execution):
        g = graph(width=8, steps=10)
        _, stats = simulate_with_stats([g], M2x4, model(execution), ARIES)
        # stencil on 2 nodes: most neighbour messages are intra-node, the
        # node boundary produces cross-node ones
        assert stats.messages_intra_node > stats.messages_cross_node > 0

    def test_cross_node_bytes_accounted(self, execution):
        g = graph(width=8, steps=10)
        _, stats = simulate_with_stats([g], M2x4, model(execution), ARIES)
        assert stats.bytes_cross_node == 64 * stats.messages_cross_node

    def test_no_comm_has_no_messages(self, execution):
        g = graph(pattern=DependenceType.NO_COMM, width=8)
        _, stats = simulate_with_stats([g], M2x4, model(execution), ARIES)
        assert stats.messages_intra_node == stats.messages_cross_node == 0

    def test_elapsed_recorded(self, execution):
        g = graph()
        result, stats = simulate_with_stats([g], M4, model(execution), IDEAL)
        assert stats.elapsed_seconds == result.elapsed_seconds > 0


class TestStealStats:
    def test_steals_zero_without_stealing(self):
        g = graph()
        _, stats = simulate_with_stats([g], M4, model("async"), IDEAL)
        assert stats.steals == 0

    def test_steals_happen_under_imbalance(self):
        gs = [graph(imbalance=1.0, iters=50000, gi=k, steps=10,
                    pattern=DependenceType.NEAREST) for k in range(4)]
        stealing = model("async", work_stealing=True, steal_overhead_s=1e-7)
        _, stats = simulate_with_stats(gs, M4, stealing, IDEAL)
        assert stats.steals > 0

    def test_stealing_reduces_imbalance_factor(self):
        gs = [graph(imbalance=1.0, iters=50000, gi=k, steps=10,
                    pattern=DependenceType.NEAREST) for k in range(4)]
        _, plain = simulate_with_stats(gs, M4, model("async"), IDEAL)
        stealing = model("async", work_stealing=True, steal_overhead_s=1e-7)
        _, stolen = simulate_with_stats(gs, M4, stealing, IDEAL)
        assert stolen.imbalance_factor < plain.imbalance_factor


class TestStatsEdgeCases:
    def test_empty_stats_defaults(self):
        s = SimStats(4)
        assert s.utilization == 0.0
        assert s.imbalance_factor == 1.0

    def test_record_message(self):
        s = SimStats(1)
        s.record_message(100, same_node=True)
        s.record_message(200, same_node=False)
        assert s.messages_intra_node == 1
        assert s.messages_cross_node == 1
        assert s.bytes_cross_node == 200
