"""Tests for the METG metric machinery (paper §4)."""

import pytest

from repro.core.metrics import RunResult
from repro.runtimes import WorkerCrashError

from repro.core import DependenceType
from repro.metg import (
    METGUnachievable,
    RealRunner,
    SimRunner,
    calibrate_kernel_flops,
    compute_workload,
    efficiency_curve,
    measure,
    memory_workload,
    metg,
    strong_scaling,
    strong_scaling_limit_nodes,
    weak_scaling,
)
from repro.runtimes import SerialExecutor
from repro.sim import ARIES, CORI_HASWELL, IDEAL, MachineSpec, RuntimeModel, get_system

SMALL = MachineSpec(nodes=1, cores_per_node=4)
SMALL4 = MachineSpec(nodes=4, cores_per_node=4)


def runner(system="mpi_p2p", machine=SMALL, network=ARIES):
    return SimRunner(system, machine, network)


class TestMeasurement:
    def test_measure_reports_efficiency(self):
        r = runner()
        m = measure(r, compute_workload(r.worker_width, steps=20), 100000)
        assert 0.9 < m.efficiency <= 1.0

    def test_small_tasks_inefficient(self):
        r = runner()
        m = measure(r, compute_workload(r.worker_width, steps=20), 1)
        assert m.efficiency < 0.1

    def test_memory_metric(self):
        r = runner()
        wl = memory_workload(r.worker_width, steps=10, span_bytes=1 << 16,
                             scratch_bytes=1 << 20)
        m = measure(r, wl, 1000, metric="bytes")
        assert 0.0 < m.efficiency <= 1.01

    def test_unknown_metric_rejected(self):
        r = runner()
        with pytest.raises(ValueError, match="unknown efficiency metric"):
            measure(r, compute_workload(r.worker_width), 10, metric="watts")

    def test_curve_is_monotone_in_iterations(self):
        r = runner()
        wl = compute_workload(r.worker_width, steps=20)
        curve = efficiency_curve(r, wl, [10, 100, 1000, 10000, 100000])
        effs = [m.efficiency for m in reversed(curve)]  # ascending iterations
        assert effs == sorted(effs)

    def test_curve_sorted_largest_first(self):
        r = runner()
        curve = efficiency_curve(r, compute_workload(r.worker_width, steps=10),
                                 [10, 1000])
        assert curve[0].iterations == 1000


class TestMETG:
    def test_metg_mpi_one_node_matches_paper(self):
        """Paper §4: MPI METG(50%) = 4.6 us for the 1-node stencil."""
        r = SimRunner("mpi_p2p", CORI_HASWELL)
        res = metg(r, compute_workload(r.worker_width, steps=50))
        assert 3.0e-6 < res.metg_seconds < 7.0e-6

    def test_metg_mpi_zero_deps_matches_paper(self):
        """Paper §5.5: MPI METG of 390 ns with 0 dependencies."""
        r = SimRunner("mpi_p2p", CORI_HASWELL)
        wl = compute_workload(r.worker_width, steps=50,
                              dependence=DependenceType.NEAREST, radix=0)
        res = metg(r, wl)
        assert 0.2e-6 < res.metg_seconds < 0.8e-6

    def test_bracketing_invariant(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=20))
        assert res.above.efficiency >= 0.5
        if res.below is not None:
            assert res.below.efficiency < 0.5
            assert res.below.iterations < res.above.iterations

    def test_metg_between_bracket_granularities(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=20))
        lo = min(res.below.granularity_seconds, res.above.granularity_seconds)
        hi = max(res.below.granularity_seconds, res.above.granularity_seconds)
        assert lo <= res.metg_seconds <= hi

    def test_higher_target_needs_larger_granularity(self):
        r = runner()
        wl = compute_workload(r.worker_width, steps=20)
        m50 = metg(r, wl, target_efficiency=0.5)
        m90 = metg(r, wl, target_efficiency=0.9)
        assert m90.metg_seconds > m50.metg_seconds

    def test_unachievable_raises(self):
        """A model whose reserved cores cap efficiency below 90% can never
        reach METG(90%)."""
        m8 = MachineSpec(nodes=1, cores_per_node=8)
        model = RuntimeModel(name="hog", runtime_cores_per_node=2)
        r = SimRunner(model, m8, IDEAL, scale_reserved=False)
        with pytest.raises(METGUnachievable):
            metg(r, compute_workload(r.worker_width, steps=10),
                 target_efficiency=0.9, max_iterations=1 << 22)

    def test_invalid_target(self):
        r = runner()
        with pytest.raises(ValueError):
            metg(r, compute_workload(r.worker_width), target_efficiency=1.5)

    def test_history_recorded(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=10))
        assert len(res.history) >= 2
        assert res.above in res.history

    def test_unit_conversions(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=10))
        assert res.metg_milliseconds == pytest.approx(res.metg_seconds * 1e3)
        assert res.metg_microseconds == pytest.approx(res.metg_seconds * 1e6)

    def test_metg_ordering_across_systems(self):
        """Key paper finding: the overhead spectrum orders systems; MPI <
        asynchronous HPC runtimes < data-analytics systems."""
        vals = {}
        for name in ("mpi_p2p", "charmpp", "regent", "spark"):
            r = SimRunner(name, SMALL)
            vals[name] = metg(r, compute_workload(r.worker_width, steps=15)).metg_seconds
        assert vals["mpi_p2p"] < vals["charmpp"] < vals["regent"] < vals["spark"]

    def test_metg_rises_with_node_count(self):
        """Paper §5.4: METG grows roughly an order of magnitude by 256
        nodes; check monotone growth on a smaller sweep."""
        vals = []
        for nodes in (1, 4, 16):
            m = MachineSpec(nodes=nodes, cores_per_node=4)
            r = SimRunner("mpi_p2p", m)
            vals.append(metg(r, compute_workload(r.worker_width, steps=15)).metg_seconds)
        assert vals[0] < vals[1] < vals[2]


class TestRealRunner:
    def test_serial_executor_metg(self):
        """The real serial executor has measurable METG on this host: the
        per-task Python overhead."""
        r = RealRunner(SerialExecutor())
        res = metg(
            r,
            compute_workload(2, steps=10, dependence=DependenceType.TRIVIAL),
            max_iterations=1 << 22,
        )
        # Python-level per-task overhead: somewhere between 1 us and 50 ms
        assert 1e-6 < res.metg_seconds < 5e-2

    def test_calibration_positive(self):
        rate = calibrate_kernel_flops(iterations=2000, repeats=1)
        assert rate > 1e6  # any real machine beats 1 MFLOP/s

    def test_real_runner_peak_scales_with_cores(self):
        from repro.runtimes import BulkSyncExecutor

        r1 = RealRunner(SerialExecutor())
        r2 = RealRunner(BulkSyncExecutor(workers=2))
        r1._peak_per_core = r2._peak_per_core = 1e9
        assert r2.peak_flops == 2 * r1.peak_flops

    def test_calibration_cached_process_wide(self, monkeypatch):
        """Every runner of a sweep shares one calibration — per-instance
        calibration would give each suite cell a different, noisy 100%
        reference and make efficiencies incomparable across cells."""
        from repro.metg import runners

        calls = []
        monkeypatch.setattr(runners, "_PEAK_PER_CORE", None)
        monkeypatch.setattr(
            runners, "calibrate_kernel_flops",
            lambda *a, **kw: calls.append(1) or 3.5e9,
        )
        monkeypatch.delenv(runners.PEAK_FLOPS_ENV, raising=False)
        r1 = RealRunner(SerialExecutor())
        r2 = RealRunner(SerialExecutor())
        assert r1.peak_flops == r2.peak_flops == 3.5e9
        assert runners.peak_flops_per_core() == 3.5e9
        assert len(calls) == 1

    def test_calibration_env_override(self, monkeypatch):
        from repro.metg import runners

        monkeypatch.setenv(runners.PEAK_FLOPS_ENV, "2e9")
        monkeypatch.setattr(
            runners, "calibrate_kernel_flops",
            lambda *a, **kw: pytest.fail("must not calibrate under override"),
        )
        assert runners.peak_flops_per_core() == 2e9
        assert RealRunner(SerialExecutor()).peak_flops == 2e9

    def test_calibration_env_override_rejects_garbage(self, monkeypatch):
        from repro.metg import runners

        monkeypatch.setenv(runners.PEAK_FLOPS_ENV, "fast")
        with pytest.raises(ValueError, match="must be a number"):
            runners.peak_flops_per_core()
        monkeypatch.setenv(runners.PEAK_FLOPS_ENV, "-1")
        with pytest.raises(ValueError, match="must be > 0"):
            runners.peak_flops_per_core()


class ScriptedRunner:
    """Fake runner with a prescribed efficiency curve.

    ``eff_fn(iterations)`` dictates the efficiency each probe reports; the
    synthetic elapsed time is back-derived so ``measure()`` reproduces it
    exactly, with task granularity growing with the iteration count (as on
    any real system).  ``fail_attempts`` injects that many transient
    worker crashes before the first successful run.
    """

    name = "scripted"
    cores = 4
    peak_flops = 1e6
    peak_bytes_per_second = 1e6

    def __init__(self, eff_fn, *, fail_attempts=0, max_retries=0):
        self.eff_fn = eff_fn
        self.max_retries = max_retries
        self._fail_remaining = fail_attempts
        self.graphs_seen = []

    def run(self, graphs):
        self.graphs_seen.append(graphs)
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            raise WorkerCrashError("injected transient crash")
        n = graphs[0].kernel.iterations
        tasks = sum(g.total_tasks() for g in graphs)
        eff = self.eff_fn(n)
        total_flops = max(1, n) * tasks
        return RunResult(
            executor=self.name,
            elapsed_seconds=total_flops / (eff * self.peak_flops),
            cores=self.cores,
            total_tasks=tasks,
            total_dependencies=0,
            total_flops=total_flops,
        )


def scripted_workload():
    return compute_workload(2, steps=5, dependence=DependenceType.TRIVIAL)


class TestMETGEdgeCases:
    """Scripted-curve edge cases of the bracket search (paper §4)."""

    @staticmethod
    def smooth(n):
        # Monotone curve crossing 50% at exactly n = 1000.
        return n / (n + 1000)

    def test_first_probe_above_target_brackets_downward(self):
        """A starting guess past the crossing must trigger a downward
        search, not report the guess's granularity as METG."""
        r = ScriptedRunner(self.smooth)
        res = metg(r, scripted_workload(), start_iterations=1 << 20)
        assert res.below is not None
        assert res.below.efficiency < 0.5 <= res.above.efficiency
        assert res.below.iterations < res.above.iterations
        # The crossing at n=1000 has granularity n*cores/(0.5*peak) = 8 ms;
        # the old behaviour returned the n=2^20 granularity (~4.2 s).
        assert res.metg_seconds == pytest.approx(8e-3, rel=0.15)

    def test_metg_independent_of_starting_guess(self):
        wl = scripted_workload()
        from_below = metg(ScriptedRunner(self.smooth), wl, start_iterations=1)
        from_above = metg(
            ScriptedRunner(self.smooth), wl, start_iterations=1 << 20
        )
        assert from_above.metg_seconds == pytest.approx(
            from_below.metg_seconds, rel=0.1
        )

    def test_always_above_target_returns_smallest_probe(self):
        """If one iteration per task still meets the target, the crossing
        is unobservable: report the smallest measurable granularity."""
        r = ScriptedRunner(lambda n: 0.9)
        res = metg(r, scripted_workload(), start_iterations=4096)
        assert res.below is None
        assert res.above.iterations == 1
        assert res.metg_seconds == res.above.granularity_seconds

    def test_non_monotone_curve_keeps_bracket_invariant(self):
        """A dip in the efficiency curve (real curves are noisy) may move
        the reported crossing but must never break the bracket."""

        def dipped(n):
            if 150 <= n <= 250:
                return 0.3
            return self.smooth(n) if n < 5000 else min(0.95, self.smooth(n))

        res = metg(ScriptedRunner(dipped), scripted_workload())
        assert res.above.efficiency >= 0.5
        assert res.below is not None and res.below.efficiency < 0.5
        assert res.below.iterations < res.above.iterations

    def test_tolerance_bounds_bisection_termination(self):
        wl = scripted_workload()
        loose = metg(ScriptedRunner(self.smooth), wl, tolerance=0.5)
        tight = metg(ScriptedRunner(self.smooth), wl, tolerance=0.005)
        assert len(tight.history) > len(loose.history)
        for res, tol in ((loose, 0.5), (tight, 0.005)):
            lo_n, hi_n = res.below.iterations, res.above.iterations
            assert hi_n <= max(lo_n + 1, lo_n * (1 + tol))

    def test_retry_rebuilds_graphs_each_attempt(self):
        """Regression: a retried probe must never re-run the graph objects
        a crashed attempt partially executed."""
        r = ScriptedRunner(self.smooth, fail_attempts=2, max_retries=3)
        built = []

        def factory(iterations):
            graphs = scripted_workload()(iterations)
            built.append(graphs)
            return graphs

        m = measure(r, factory, 1000)
        assert len(built) == 3  # one fresh build per attempt
        assert len(r.graphs_seen) == 3
        seen_ids = [id(g) for g in r.graphs_seen]
        assert len(set(seen_ids)) == 3, "an attempt re-used a graphs object"
        assert r.graphs_seen[-1] is built[-1]
        assert m.result.faults is not None
        assert m.result.faults.probe_retries == 2

    def test_retry_budget_exhausted_raises(self):
        r = ScriptedRunner(self.smooth, fail_attempts=3, max_retries=1)
        with pytest.raises(WorkerCrashError):
            measure(r, scripted_workload(), 1000)
        assert len(r.graphs_seen) == 2  # initial attempt + one retry

    def test_probe_retries_accounted_in_sweep_history(self):
        """FaultStats.probe_retries lands on exactly the probe that
        burned the retries."""
        r = ScriptedRunner(self.smooth, fail_attempts=1, max_retries=2)
        res = metg(r, scripted_workload())
        retries = [
            (m.result.faults.probe_retries if m.result.faults else 0)
            for m in res.history
        ]
        assert retries[0] == 1
        assert sum(retries) == 1


class TestScaling:
    def test_weak_scaling_flat_at_large_tasks(self):
        """Paper Figure 4: large problem sizes weak-scale flat."""
        pts = weak_scaling(get_system("mpi_p2p"), [1, 2, 4], 200000,
                           machine=SMALL, steps=10)
        walls = [p.wall_seconds for p in pts]
        assert max(walls) / min(walls) < 1.2

    def test_weak_scaling_degrades_at_small_tasks(self):
        """Paper Figure 4: small problem sizes stop scaling."""
        pts = weak_scaling(get_system("mpi_p2p"), [1, 4, 16], 20,
                           machine=SMALL, steps=10)
        assert pts[-1].efficiency < pts[0].efficiency

    def test_strong_scaling_reduces_wall_time(self):
        """Paper Figure 5: large problems strong-scale downward."""
        pts = strong_scaling(get_system("mpi_p2p"), [1, 2, 4], 40_000_000,
                             machine=SMALL, steps=10)
        walls = [p.wall_seconds for p in pts]
        assert walls[-1] < walls[0] / 2

    def test_strong_scaling_stops_at_metg(self):
        """Paper §4: strong scaling stops where granularity hits METG."""
        pts = strong_scaling(get_system("mpi_p2p"), [1, 2, 4, 8, 16], 300_000,
                             machine=SMALL, steps=10)
        limit = strong_scaling_limit_nodes(pts)
        assert 0 < limit < 16

    def test_scaling_point_fields(self):
        pts = weak_scaling(get_system("mpi_p2p"), [1], 1000, machine=SMALL, steps=5)
        p = pts[0]
        assert p.nodes == 1 and p.iterations_per_task == 1000
        assert p.granularity_seconds > 0 and 0 < p.efficiency <= 1.0
