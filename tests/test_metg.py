"""Tests for the METG metric machinery (paper §4)."""

import pytest

from repro.core import DependenceType
from repro.metg import (
    METGUnachievable,
    RealRunner,
    SimRunner,
    calibrate_kernel_flops,
    compute_workload,
    efficiency_curve,
    measure,
    memory_workload,
    metg,
    strong_scaling,
    strong_scaling_limit_nodes,
    weak_scaling,
)
from repro.runtimes import SerialExecutor
from repro.sim import ARIES, CORI_HASWELL, IDEAL, MachineSpec, RuntimeModel, get_system

SMALL = MachineSpec(nodes=1, cores_per_node=4)
SMALL4 = MachineSpec(nodes=4, cores_per_node=4)


def runner(system="mpi_p2p", machine=SMALL, network=ARIES):
    return SimRunner(system, machine, network)


class TestMeasurement:
    def test_measure_reports_efficiency(self):
        r = runner()
        m = measure(r, compute_workload(r.worker_width, steps=20), 100000)
        assert 0.9 < m.efficiency <= 1.0

    def test_small_tasks_inefficient(self):
        r = runner()
        m = measure(r, compute_workload(r.worker_width, steps=20), 1)
        assert m.efficiency < 0.1

    def test_memory_metric(self):
        r = runner()
        wl = memory_workload(r.worker_width, steps=10, span_bytes=1 << 16,
                             scratch_bytes=1 << 20)
        m = measure(r, wl, 1000, metric="bytes")
        assert 0.0 < m.efficiency <= 1.01

    def test_unknown_metric_rejected(self):
        r = runner()
        with pytest.raises(ValueError, match="unknown efficiency metric"):
            measure(r, compute_workload(r.worker_width), 10, metric="watts")

    def test_curve_is_monotone_in_iterations(self):
        r = runner()
        wl = compute_workload(r.worker_width, steps=20)
        curve = efficiency_curve(r, wl, [10, 100, 1000, 10000, 100000])
        effs = [m.efficiency for m in reversed(curve)]  # ascending iterations
        assert effs == sorted(effs)

    def test_curve_sorted_largest_first(self):
        r = runner()
        curve = efficiency_curve(r, compute_workload(r.worker_width, steps=10),
                                 [10, 1000])
        assert curve[0].iterations == 1000


class TestMETG:
    def test_metg_mpi_one_node_matches_paper(self):
        """Paper §4: MPI METG(50%) = 4.6 us for the 1-node stencil."""
        r = SimRunner("mpi_p2p", CORI_HASWELL)
        res = metg(r, compute_workload(r.worker_width, steps=50))
        assert 3.0e-6 < res.metg_seconds < 7.0e-6

    def test_metg_mpi_zero_deps_matches_paper(self):
        """Paper §5.5: MPI METG of 390 ns with 0 dependencies."""
        r = SimRunner("mpi_p2p", CORI_HASWELL)
        wl = compute_workload(r.worker_width, steps=50,
                              dependence=DependenceType.NEAREST, radix=0)
        res = metg(r, wl)
        assert 0.2e-6 < res.metg_seconds < 0.8e-6

    def test_bracketing_invariant(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=20))
        assert res.above.efficiency >= 0.5
        if res.below is not None:
            assert res.below.efficiency < 0.5
            assert res.below.iterations < res.above.iterations

    def test_metg_between_bracket_granularities(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=20))
        lo = min(res.below.granularity_seconds, res.above.granularity_seconds)
        hi = max(res.below.granularity_seconds, res.above.granularity_seconds)
        assert lo <= res.metg_seconds <= hi

    def test_higher_target_needs_larger_granularity(self):
        r = runner()
        wl = compute_workload(r.worker_width, steps=20)
        m50 = metg(r, wl, target_efficiency=0.5)
        m90 = metg(r, wl, target_efficiency=0.9)
        assert m90.metg_seconds > m50.metg_seconds

    def test_unachievable_raises(self):
        """A model whose reserved cores cap efficiency below 90% can never
        reach METG(90%)."""
        m8 = MachineSpec(nodes=1, cores_per_node=8)
        model = RuntimeModel(name="hog", runtime_cores_per_node=2)
        r = SimRunner(model, m8, IDEAL, scale_reserved=False)
        with pytest.raises(METGUnachievable):
            metg(r, compute_workload(r.worker_width, steps=10),
                 target_efficiency=0.9, max_iterations=1 << 22)

    def test_invalid_target(self):
        r = runner()
        with pytest.raises(ValueError):
            metg(r, compute_workload(r.worker_width), target_efficiency=1.5)

    def test_history_recorded(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=10))
        assert len(res.history) >= 2
        assert res.above in res.history

    def test_unit_conversions(self):
        r = runner()
        res = metg(r, compute_workload(r.worker_width, steps=10))
        assert res.metg_milliseconds == pytest.approx(res.metg_seconds * 1e3)
        assert res.metg_microseconds == pytest.approx(res.metg_seconds * 1e6)

    def test_metg_ordering_across_systems(self):
        """Key paper finding: the overhead spectrum orders systems; MPI <
        asynchronous HPC runtimes < data-analytics systems."""
        vals = {}
        for name in ("mpi_p2p", "charmpp", "regent", "spark"):
            r = SimRunner(name, SMALL)
            vals[name] = metg(r, compute_workload(r.worker_width, steps=15)).metg_seconds
        assert vals["mpi_p2p"] < vals["charmpp"] < vals["regent"] < vals["spark"]

    def test_metg_rises_with_node_count(self):
        """Paper §5.4: METG grows roughly an order of magnitude by 256
        nodes; check monotone growth on a smaller sweep."""
        vals = []
        for nodes in (1, 4, 16):
            m = MachineSpec(nodes=nodes, cores_per_node=4)
            r = SimRunner("mpi_p2p", m)
            vals.append(metg(r, compute_workload(r.worker_width, steps=15)).metg_seconds)
        assert vals[0] < vals[1] < vals[2]


class TestRealRunner:
    def test_serial_executor_metg(self):
        """The real serial executor has measurable METG on this host: the
        per-task Python overhead."""
        r = RealRunner(SerialExecutor())
        res = metg(
            r,
            compute_workload(2, steps=10, dependence=DependenceType.TRIVIAL),
            max_iterations=1 << 22,
        )
        # Python-level per-task overhead: somewhere between 1 us and 50 ms
        assert 1e-6 < res.metg_seconds < 5e-2

    def test_calibration_positive(self):
        rate = calibrate_kernel_flops(iterations=2000, repeats=1)
        assert rate > 1e6  # any real machine beats 1 MFLOP/s

    def test_real_runner_peak_scales_with_cores(self):
        from repro.runtimes import BulkSyncExecutor

        r1 = RealRunner(SerialExecutor())
        r2 = RealRunner(BulkSyncExecutor(workers=2))
        r1._peak_per_core = r2._peak_per_core = 1e9
        assert r2.peak_flops == 2 * r1.peak_flops


class TestScaling:
    def test_weak_scaling_flat_at_large_tasks(self):
        """Paper Figure 4: large problem sizes weak-scale flat."""
        pts = weak_scaling(get_system("mpi_p2p"), [1, 2, 4], 200000,
                           machine=SMALL, steps=10)
        walls = [p.wall_seconds for p in pts]
        assert max(walls) / min(walls) < 1.2

    def test_weak_scaling_degrades_at_small_tasks(self):
        """Paper Figure 4: small problem sizes stop scaling."""
        pts = weak_scaling(get_system("mpi_p2p"), [1, 4, 16], 20,
                           machine=SMALL, steps=10)
        assert pts[-1].efficiency < pts[0].efficiency

    def test_strong_scaling_reduces_wall_time(self):
        """Paper Figure 5: large problems strong-scale downward."""
        pts = strong_scaling(get_system("mpi_p2p"), [1, 2, 4], 40_000_000,
                             machine=SMALL, steps=10)
        walls = [p.wall_seconds for p in pts]
        assert walls[-1] < walls[0] / 2

    def test_strong_scaling_stops_at_metg(self):
        """Paper §4: strong scaling stops where granularity hits METG."""
        pts = strong_scaling(get_system("mpi_p2p"), [1, 2, 4, 8, 16], 300_000,
                             machine=SMALL, steps=10)
        limit = strong_scaling_limit_nodes(pts)
        assert 0 < limit < 16

    def test_scaling_point_fields(self):
        pts = weak_scaling(get_system("mpi_p2p"), [1], 1000, machine=SMALL, steps=5)
        p = pts[0]
        assert p.nodes == 1 and p.iterations_per_task == 1000
        assert p.granularity_seconds > 0 and 0 < p.efficiency <= 1.0
