"""Tests for the discrete-event simulator substrate.

Beyond unit behaviour, these check the *phenomena* the paper's evaluation
rests on: overhead-dominated vs kernel-dominated regimes, communication
overlap in asynchronous models, barrier costs, controller throughput caps,
dynamic-check scaling, and work stealing under load imbalance.
"""

import pytest

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.sim import (
    ARIES,
    IDEAL,
    MachineSpec,
    RuntimeModel,
    all_systems,
    get_system,
    scaled_for,
    simulate,
)

M4 = MachineSpec(nodes=1, cores_per_node=4)
M4x4 = MachineSpec(nodes=4, cores_per_node=4)


def graph(iters=1000, width=4, steps=20, pattern=DependenceType.STENCIL_1D,
          radix=3, gi=0, output=16, imbalance=0.0):
    ktype = KernelType.LOAD_IMBALANCE if imbalance else KernelType.COMPUTE_BOUND
    return TaskGraph(
        timesteps=steps,
        max_width=width,
        dependence=pattern,
        radix=radix,
        kernel=Kernel(kernel_type=ktype, iterations=iters, imbalance=imbalance),
        output_bytes_per_task=output,
        graph_index=gi,
    )


def free_model(execution="async", **kw):
    """A runtime model with zero overheads (engine-behaviour isolation)."""
    base = dict(
        name="free",
        execution=execution,
        task_overhead_s=0.0,
        dep_overhead_s=0.0,
        send_overhead_s=0.0,
    )
    base.update(kw)
    return RuntimeModel(**base)


class TestBasics:
    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_perfect_machine_matches_ideal_time(self, execution):
        """With zero overheads and a free network, wall time is exactly
        (tasks per core) x (kernel time)."""
        g = graph(iters=1000, width=4, steps=10)
        r = simulate([g], M4, free_model(execution), IDEAL)
        ideal = 10 * M4.kernel_seconds(g.kernel)
        assert r.elapsed_seconds == pytest.approx(ideal, rel=1e-9)

    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_efficiency_100_percent_on_perfect_machine(self, execution):
        g = graph(iters=1000)
        r = simulate([g], M4, free_model(execution), IDEAL)
        assert r.flops_per_second / M4.peak_flops == pytest.approx(1.0, rel=1e-9)

    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_overhead_reduces_efficiency(self, execution):
        g = graph(iters=100)
        free = simulate([g], M4, free_model(execution), IDEAL)
        slow = simulate(
            [g], M4, free_model(execution, task_overhead_s=10e-6), IDEAL
        )
        assert slow.elapsed_seconds > free.elapsed_seconds

    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_task_overhead_additive(self, execution):
        """10 us of per-task overhead on every one of 20 timesteps."""
        g = graph(iters=1000, steps=20)
        free = simulate([g], M4, free_model(execution), IDEAL)
        slow = simulate([g], M4, free_model(execution, task_overhead_s=10e-6), IDEAL)
        assert slow.elapsed_seconds - free.elapsed_seconds == pytest.approx(
            20 * 10e-6, rel=0.01
        )

    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_wider_than_cores_graph(self, execution):
        g = graph(width=10)
        r = simulate([g], M4, free_model(execution), IDEAL)
        ideal = 20 * 3 * M4.kernel_seconds(g.kernel)  # 3 columns on busiest core
        assert r.elapsed_seconds >= ideal * 0.99

    @pytest.mark.parametrize("execution", ["phased", "async"])
    @pytest.mark.parametrize("pattern", list(DependenceType))
    def test_all_patterns_complete(self, execution, pattern):
        g = graph(pattern=pattern, width=5, steps=6)
        r = simulate([g], M4x4, free_model(execution), ARIES)
        assert r.elapsed_seconds > 0

    def test_multiple_graphs(self):
        gs = [graph(gi=0), graph(gi=1, pattern=DependenceType.FFT)]
        r = simulate(gs, M4, free_model(), IDEAL)
        assert r.total_tasks == sum(g.total_tasks() for g in gs)

    def test_empty_graph_list_rejected(self):
        with pytest.raises(ValueError):
            simulate([], M4, free_model(), IDEAL)

    def test_single_node_system_rejects_multinode(self):
        with pytest.raises(ValueError, match="single-node"):
            simulate([graph()], M4x4, get_system("openmp_task"), ARIES)

    def test_result_uses_machine_cores(self):
        r = simulate([graph()], M4x4, free_model(), IDEAL)
        assert r.cores == 16


class TestCommunication:
    def test_network_latency_slows_cross_node_patterns(self):
        g = graph(iters=10, width=16, steps=30)
        fast = simulate([g], M4x4, free_model("phased"), IDEAL)
        slow = simulate([g], M4x4, free_model("phased"), ARIES)
        assert slow.elapsed_seconds > fast.elapsed_seconds

    def test_payload_size_matters_on_real_network(self):
        small = graph(iters=10, width=16, steps=30, output=16)
        big = graph(iters=10, width=16, steps=30, output=1 << 20)
        r_small = simulate([small], M4x4, free_model("phased"), ARIES)
        r_big = simulate([big], M4x4, free_model("phased"), ARIES)
        assert r_big.elapsed_seconds > r_small.elapsed_seconds

    def test_no_comm_pattern_ignores_network(self):
        g = graph(iters=10, width=16, steps=30, pattern=DependenceType.NO_COMM)
        fast = simulate([g], M4x4, free_model("phased"), IDEAL)
        slow = simulate([g], M4x4, free_model("phased"), ARIES)
        assert slow.elapsed_seconds == pytest.approx(fast.elapsed_seconds)

    def test_async_overlaps_communication_with_task_parallelism(self):
        """Paper §5.6: asynchronous systems hide communication when several
        graphs provide task parallelism; phased systems cannot."""
        gs = [
            graph(iters=300, width=16, steps=20, gi=k,
                  pattern=DependenceType.SPREAD, radix=5, output=4096)
            for k in range(4)
        ]
        phased = simulate(gs, M4x4, free_model("phased"), ARIES)
        asynch = simulate(gs, M4x4, free_model("async"), ARIES)
        assert asynch.elapsed_seconds < phased.elapsed_seconds

    def test_barrier_adds_cost(self):
        g = graph(iters=100, width=16, steps=30)
        p2p = simulate([g], M4x4, free_model("phased"), ARIES)
        bulk = simulate([g], M4x4, free_model("phased", barrier=True), ARIES)
        assert bulk.elapsed_seconds > p2p.elapsed_seconds


class TestRuntimeMechanisms:
    def test_dependency_overhead_scales_with_radix(self):
        """Paper §5.5: dependencies per task strongly influence overhead."""
        m = free_model("async", dep_overhead_s=1e-6, send_overhead_s=1e-6)
        times = []
        for radix in (0, 3, 9):
            g = graph(iters=10, width=16, steps=20,
                      pattern=DependenceType.NEAREST, radix=radix)
            times.append(simulate([g], M4x4, m, IDEAL).elapsed_seconds)
        assert times[0] < times[1] < times[2]

    def test_dynamic_checks_scale_with_nodes(self):
        """Paper §5.4: DTD-style DAG trimming costs grow with node count."""
        m = free_model("async", dynamic_check_s_per_node=0.5e-6)
        g1 = graph(iters=10, width=4, steps=20)
        g4 = graph(iters=10, width=16, steps=20)
        r1 = simulate([g1], M4, m, IDEAL)
        r4 = simulate([g4], M4x4, m, IDEAL)
        # same per-core task count; the 4-node run pays 4x the check cost
        assert r4.elapsed_seconds > r1.elapsed_seconds

    def test_controller_caps_throughput(self):
        """Paper §5.4: a centralized controller bounds tasks/second."""
        m = free_model("async", controller_tasks_per_s=1000.0)
        g = graph(iters=1, width=16, steps=50)
        r = simulate([g], M4x4, m, IDEAL)
        assert r.tasks_per_second <= 1000.0 * 1.01

    def test_controller_irrelevant_for_large_tasks(self):
        m_free = free_model("async")
        m_ctrl = free_model("async", controller_tasks_per_s=100000.0)
        g = graph(iters=100000, width=4, steps=10)
        r_free = simulate([g], M4, m_free, IDEAL)
        r_ctrl = simulate([g], M4, m_ctrl, IDEAL)
        assert r_ctrl.elapsed_seconds == pytest.approx(
            r_free.elapsed_seconds, rel=0.05
        )

    def test_reserved_cores_cut_peak(self):
        """Paper §5.1: reserving cores takes a hit in peak FLOP/s."""
        m8 = MachineSpec(nodes=1, cores_per_node=8)
        g = graph(iters=10000, width=7, steps=10)
        reserved = free_model("async", runtime_cores_per_node=1)
        r = simulate([g], m8, reserved, IDEAL)
        eff = r.flops_per_second / m8.peak_flops
        assert eff == pytest.approx(7 / 8, rel=0.01)

    def test_reserved_cores_exhausting_node_rejected(self):
        m = free_model("async", runtime_cores_per_node=4)
        with pytest.raises(ValueError, match="no workers"):
            simulate([graph()], M4, m, IDEAL)

    def test_work_stealing_mitigates_imbalance(self):
        """Paper §5.7: on-node work stealing gains efficiency under load
        imbalance at large task granularity."""
        m8 = MachineSpec(nodes=1, cores_per_node=8)
        gs = [graph(iters=20000, width=8, steps=10, gi=k, imbalance=1.0,
                    pattern=DependenceType.NEAREST, radix=5)
              for k in range(4)]
        plain = free_model("async")
        stealing = free_model("async", work_stealing=True, steal_overhead_s=1e-6)
        r_plain = simulate(gs, m8, plain, IDEAL)
        r_steal = simulate(gs, m8, stealing, IDEAL)
        assert r_steal.elapsed_seconds < r_plain.elapsed_seconds

    def test_bulk_sync_suffers_most_under_imbalance(self):
        """Paper §5.7: the phase barrier makes imbalance bound efficiency."""
        gs = [graph(iters=20000, width=16, steps=10, gi=k, imbalance=1.0)
              for k in range(4)]
        bulk = simulate(gs, M4x4, free_model("phased", barrier=True), IDEAL)
        asynch = simulate(gs, M4x4, free_model("async"), IDEAL)
        assert asynch.elapsed_seconds < bulk.elapsed_seconds


class TestSystemsCatalog:
    def test_all_systems_simulate(self):
        m8 = MachineSpec(nodes=1, cores_per_node=8)
        g = graph(iters=100, width=8, steps=5)
        for name, model in all_systems().items():
            r = simulate([g], m8, scaled_for(model, m8), ARIES)
            assert r.elapsed_seconds > 0, name

    @pytest.mark.parametrize("pattern", list(DependenceType))
    def test_all_systems_all_patterns(self, pattern):
        """Every modeled system completes every dependence pattern on a
        multi-node machine (single-node systems on one node)."""
        multi = MachineSpec(nodes=2, cores_per_node=4)
        single = MachineSpec(nodes=1, cores_per_node=8)
        g = graph(iters=50, width=8, steps=5, pattern=pattern)
        for name, model in all_systems().items():
            machine = multi if model.distributed else single
            r = simulate([g], machine, scaled_for(model, machine), ARIES)
            assert r.elapsed_seconds > 0, (name, pattern)

    def test_system_totals_independent_of_model(self):
        """Work accounting comes from the graphs, not the model."""
        m8 = MachineSpec(nodes=1, cores_per_node=8)
        g = graph(iters=100, width=8, steps=5)
        totals = {
            simulate([g], m8, scaled_for(mod, m8), ARIES).total_flops
            for mod in all_systems().values()
        }
        assert len(totals) == 1

    def test_get_system_unknown(self):
        with pytest.raises(ValueError, match="unknown system"):
            get_system("erlang")

    def test_five_orders_of_magnitude(self):
        """Paper §1: baseline overheads span >5 orders of magnitude."""
        systems = all_systems()
        fast = systems["mpi_p2p"].task_overhead_s
        slow = systems["swift_t"].task_overhead_s + systems["spark"].task_overhead_s
        assert slow / fast > 1e4

    def test_scaled_for_preserves_fraction(self):
        from repro.sim import CORI_HASWELL

        realm = get_system("realm")
        assert scaled_for(realm, CORI_HASWELL).runtime_cores_per_node == 2
        small = MachineSpec(nodes=1, cores_per_node=8)
        assert scaled_for(realm, small).runtime_cores_per_node == 1
        tiny = MachineSpec(nodes=1, cores_per_node=4)
        assert scaled_for(realm, tiny).runtime_cores_per_node == 0

    def test_model_validation(self):
        with pytest.raises(ValueError):
            RuntimeModel(name="x", task_overhead_s=-1)
        with pytest.raises(ValueError, match="barrier"):
            RuntimeModel(name="x", execution="async", barrier=True)
        with pytest.raises(ValueError):
            RuntimeModel(name="x", runtime_cores_per_node=-1)

    def test_task_runtime_cost_formula(self):
        m = RuntimeModel(
            name="x",
            task_overhead_s=1e-6,
            dep_overhead_s=2e-6,
            send_overhead_s=3e-6,
            dynamic_check_s_per_node=0.1e-6,
        )
        assert m.task_runtime_cost_s(2, 3, 10) == pytest.approx(
            1e-6 + 4e-6 + 9e-6 + 1e-6
        )
