"""Unit tests for the TaskGraph abstraction."""

import numpy as np
import pytest

from repro.core import (
    DependenceType,
    Kernel,
    KernelType,
    TaskGraph,
    ValidationError,
)
from repro.core.validation import expected_inputs


def stencil_graph(**kw):
    base = dict(
        timesteps=6,
        max_width=8,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
        output_bytes_per_task=16,
    )
    base.update(kw)
    return TaskGraph(**base)


class TestConstruction:
    def test_defaults(self):
        g = TaskGraph(timesteps=3, max_width=2)
        assert g.dependence is DependenceType.TRIVIAL
        assert g.graph_index == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="timesteps"):
            TaskGraph(timesteps=0, max_width=2)
        with pytest.raises(ValueError, match="max_width"):
            TaskGraph(timesteps=2, max_width=0)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValueError, match="output_bytes"):
            TaskGraph(timesteps=2, max_width=2, output_bytes_per_task=-1)
        with pytest.raises(ValueError, match="scratch_bytes"):
            TaskGraph(timesteps=2, max_width=2, scratch_bytes_per_task=-1)

    def test_memory_kernel_requires_scratch(self):
        with pytest.raises(ValueError, match="scratch"):
            TaskGraph(
                timesteps=2,
                max_width=2,
                kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1, span_bytes=4),
                scratch_bytes_per_task=0,
            )

    def test_with_replaces_fields(self):
        g = stencil_graph()
        g2 = g.with_(max_width=16)
        assert g2.max_width == 16 and g.max_width == 8
        assert g2.dependence is g.dependence

    def test_frozen(self):
        g = stencil_graph()
        with pytest.raises(Exception):
            g.max_width = 99

    def test_describe_mentions_key_params(self):
        d = stencil_graph().describe()
        assert "stencil_1d" in d and "6x8" in d


class TestAccounting:
    def test_total_tasks_rectangle(self):
        g = stencil_graph()
        assert g.total_tasks() == 6 * 8

    def test_total_tasks_tree(self):
        g = stencil_graph(dependence=DependenceType.TREE)
        assert g.total_tasks() == 1 + 2 + 4 + 8 + 8 + 8

    def test_total_dependencies_trivial(self):
        g = stencil_graph(dependence=DependenceType.TRIVIAL)
        assert g.total_dependencies() == 0

    def test_total_dependencies_stencil(self):
        g = stencil_graph()
        # interior: 3 deps, two edges: 2 deps; 5 dependent timesteps
        assert g.total_dependencies() == 5 * (6 * 3 + 2 * 2)

    def test_total_flops(self):
        g = stencil_graph()
        assert g.total_flops() == 48 * 2 * 128

    def test_total_flops_empty_kernel_zero(self):
        g = stencil_graph(kernel=Kernel())
        assert g.total_flops() == 0

    def test_total_flops_imbalance_less_than_nominal(self):
        g = stencil_graph(
            kernel=Kernel(
                kernel_type=KernelType.LOAD_IMBALANCE, iterations=1000, imbalance=1.0
            )
        )
        nominal = 48 * 1000 * 128
        assert 0 < g.total_flops() < nominal

    def test_total_bytes_memory_kernel(self):
        g = stencil_graph(
            kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=3, span_bytes=10),
            scratch_bytes_per_task=64,
        )
        assert g.total_bytes() == 48 * 2 * 3 * 10

    def test_points_cover_iteration_space(self):
        g = stencil_graph(dependence=DependenceType.TREE)
        pts = list(g.points())
        assert len(pts) == g.total_tasks()
        assert all(g.contains_point(t, i) for t, i in pts)
        assert len(set(pts)) == len(pts)


class TestExecutePoint:
    def test_first_timestep_no_inputs(self):
        g = stencil_graph()
        out = g.execute_point(0, 3, [])
        assert out.nbytes == 16

    def test_chained_execution_validates(self):
        g = stencil_graph()
        outputs = {i: g.execute_point(0, i, []) for i in range(8)}
        for i in range(8):
            inputs = [outputs[j] for j in g.dependency_points(1, i)]
            g.execute_point(1, i, inputs)

    def test_wrong_input_count_raises(self):
        g = stencil_graph()
        with pytest.raises(ValidationError, match="expected 3 inputs"):
            g.execute_point(1, 3, [])

    def test_wrong_input_order_raises(self):
        g = stencil_graph()
        inputs = expected_inputs(g, 1, 3)
        inputs.reverse()
        with pytest.raises(ValidationError):
            g.execute_point(1, 3, inputs)

    def test_corrupted_input_raises(self):
        g = stencil_graph()
        inputs = expected_inputs(g, 1, 3)
        inputs[1] = inputs[1].copy()
        inputs[1][-1] ^= 0xFF
        with pytest.raises(ValidationError, match="slot 1"):
            g.execute_point(1, 3, inputs)

    def test_validation_can_be_disabled(self):
        g = stencil_graph()
        out = g.execute_point(1, 3, [], validate=False)
        assert out.nbytes == 16

    def test_memory_kernel_end_to_end(self):
        g = stencil_graph(
            kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=2, span_bytes=8),
            scratch_bytes_per_task=64,
        )
        scratch = g.prepare_scratch()
        assert scratch.nbytes == 64 and scratch.dtype == np.uint8
        g.execute_point(0, 0, [], scratch=scratch)

    def test_prepare_scratch_zeroed(self):
        g = stencil_graph(scratch_bytes_per_task=32)
        assert np.all(g.prepare_scratch() == 0)


class TestShapeDelegation:
    def test_max_dependencies(self):
        assert stencil_graph().max_dependencies() == 3
        assert stencil_graph(dependence=DependenceType.ALL_TO_ALL).max_dependencies() == 8

    def test_offset_zero_for_rectangular(self):
        g = stencil_graph()
        assert all(g.offset_at_timestep(t) == 0 for t in range(6))

    def test_dependency_points_sorted(self):
        g = stencil_graph(dependence=DependenceType.SPREAD, radix=3)
        for t, i in g.points():
            if t == 0:
                continue
            pts = list(g.dependency_points(t, i))
            assert pts == sorted(pts)
