"""Unit tests for machine and network models."""

import pytest

from repro.core import Kernel, KernelType
from repro.sim import ARIES, CORI_HASWELL, IDEAL, MachineSpec, NetworkModel, column_to_core


class TestMachineSpec:
    def test_cori_matches_paper_peak(self):
        """Paper §5.1: measured peak 1.26 TFLOP/s per 32-core Haswell node."""
        assert CORI_HASWELL.cores_per_node == 32
        assert CORI_HASWELL.peak_flops == pytest.approx(1.26e12, rel=0.01)

    def test_cori_memory_peak(self):
        """Paper §5.2: measured 79 GB/s per node."""
        assert CORI_HASWELL.peak_bytes_per_second == pytest.approx(79e9)

    def test_total_cores(self):
        assert MachineSpec(nodes=4, cores_per_node=8).total_cores == 32

    def test_with_nodes(self):
        m = CORI_HASWELL.with_nodes(64)
        assert m.nodes == 64 and m.cores_per_node == 32
        assert m.peak_flops == pytest.approx(64 * 1.26e12, rel=0.01)

    def test_node_of_core(self):
        m = MachineSpec(nodes=3, cores_per_node=4)
        assert m.node_of_core(0) == 0
        assert m.node_of_core(7) == 1
        assert m.node_of_core(11) == 2
        with pytest.raises(IndexError):
            m.node_of_core(12)

    def test_kernel_seconds_linear_in_iterations(self):
        m = CORI_HASWELL
        k1 = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=1000)
        k2 = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2000)
        assert m.kernel_seconds(k2) == pytest.approx(2 * m.kernel_seconds(k1))

    def test_kernel_rate_matches_core_peak(self):
        m = CORI_HASWELL
        k = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=10000)
        flops = k.flops_per_task()
        assert flops / m.kernel_seconds(k) == pytest.approx(m.flops_per_core)

    def test_memory_kernel_shares_bandwidth(self):
        m = CORI_HASWELL
        k = Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=10, span_bytes=4096)
        tm_full = m.kernel_time_model(32)
        tm_one = m.kernel_time_model(1)
        # one core alone gets the whole node bandwidth; 32 cores share it
        # up to the saturation count
        assert tm_one.task_seconds(k) < tm_full.task_seconds(k)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(nodes=0)
        with pytest.raises(ValueError):
            MachineSpec(cores_per_node=0)
        with pytest.raises(ValueError):
            MachineSpec(flops_per_core=0)


class TestColumnToCore:
    def test_identity_when_width_equals_cores(self):
        for i in range(8):
            assert column_to_core(i, 8, 8) == i

    def test_block_mapping_when_oversubscribed(self):
        cores = [column_to_core(i, 8, 4) for i in range(8)]
        assert cores == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_contiguity(self):
        """Block mapping: consecutive columns map to non-decreasing cores."""
        cores = [column_to_core(i, 13, 5) for i in range(13)]
        assert cores == sorted(cores)
        assert set(cores) == set(range(5))

    def test_underscribed_leaves_cores_idle(self):
        assert column_to_core(2, 3, 8) == 2

    def test_bounds(self):
        with pytest.raises(IndexError):
            column_to_core(8, 8, 8)
        with pytest.raises(ValueError):
            column_to_core(0, 0, 8)


class TestNetworkModel:
    def test_latency_grows_with_nodes(self):
        assert ARIES.latency_seconds(256) > ARIES.latency_seconds(16) > ARIES.latency_seconds(1)

    def test_single_node_is_base(self):
        assert ARIES.latency_seconds(1) == ARIES.base_latency_s

    def test_order_of_magnitude_rise_at_scale(self):
        """§5.4: smallest-METG systems see ~10x METG growth by 256 nodes;
        the latency model must supply that order of magnitude."""
        ratio = ARIES.latency_seconds(256) / ARIES.latency_seconds(1)
        assert 5 < ratio < 50

    def test_message_time_includes_bandwidth(self):
        small = ARIES.message_seconds(16, same_node=False, nodes=4)
        large = ARIES.message_seconds(1 << 20, same_node=False, nodes=4)
        assert large > small
        assert large - small == pytest.approx((1 << 20) / ARIES.bandwidth_bytes_per_s, rel=0.01)

    def test_intra_node_cheaper(self):
        intra = ARIES.message_seconds(1024, same_node=True, nodes=64)
        inter = ARIES.message_seconds(1024, same_node=False, nodes=64)
        assert intra < inter

    def test_ideal_network_is_free(self):
        assert IDEAL.message_seconds(1 << 30, same_node=False, nodes=256) < 1e-15

    def test_zero_bytes_ok(self):
        assert ARIES.message_seconds(0, same_node=False, nodes=2) == pytest.approx(
            ARIES.latency_seconds(2)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(base_latency_s=-1)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            ARIES.message_seconds(-1, same_node=False)
        with pytest.raises(ValueError):
            ARIES.latency_seconds(0)
