"""Tests for figure regeneration and reporting.

Each figure test checks the *qualitative* claims of the corresponding paper
figure at a reduced scale — the pass criterion of the reproduction.
"""

import pytest

from repro.analysis import (
    FigureConfig,
    FigureData,
    Series,
    figure2_3,
    figure4,
    figure5,
    figure6_7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    format_quantity,
    render_markdown_table,
    render_series_table,
    summarize_extremes,
)

# Small, fast configuration shared by the figure tests.
FAST = FigureConfig(
    cores_per_node=4,
    steps=12,
    node_counts=(1, 4, 16),
    problem_sizes=tuple(8**e for e in range(7)),
)


class TestFigureDataStructures:
    def test_series_length_check(self):
        with pytest.raises(ValueError):
            Series("x", [1, 2], [1])

    def test_figure_get(self):
        f = FigureData("f", "t", "x", "y", [Series("a", [1], [2])])
        assert f.get("a").y == [2]
        with pytest.raises(KeyError):
            f.get("b")

    def test_config_paper_scale(self):
        cfg = FigureConfig.paper()
        assert cfg.cores_per_node == 32
        assert 256 in cfg.node_counts

    def test_config_machine(self):
        m = FAST.machine(4)
        assert m.nodes == 4 and m.cores_per_node == 4


class TestFigures2and3:
    def test_shapes(self):
        figs = figure2_3(FAST)
        flops, eff = figs["flops"], figs["efficiency"]
        s = flops.get("mpi_p2p")
        # FLOP/s grows monotonically with problem size (Figure 2)
        assert s.y == sorted(s.y)
        e = eff.get("mpi_p2p")
        # efficiency approaches 1 at large granularity, ~0 at small
        assert max(e.y) > 0.9 and min(e.y) < 0.1


class TestFigures4and5:
    def test_weak_scaling_flat_at_top_rising_at_bottom(self):
        fig = figure4(FAST, sizes=(8, 32768))
        small, large = fig.get("iters=8"), fig.get("iters=32768")
        assert max(large.y) / min(large.y) < 1.3  # flat
        assert small.y[-1] / small.y[0] > 1.5  # compressed/rising

    def test_strong_scaling_large_problem_scales_down(self):
        fig = figure5(FAST)
        big = fig.series[-1]
        assert big.y[-1] < big.y[0] / 2


class TestFigures6and7:
    def test_subset_of_systems(self):
        cfg = FAST.with_(systems=("mpi_p2p", "charmpp", "spark"))
        figs = figure6_7(cfg)
        assert set(figs["flops"].labels) == {"mpi_p2p", "charmpp", "spark"}

    def test_spark_needs_much_larger_tasks(self):
        """Figure 7: data-analytics systems reach 50% only at far larger
        granularity."""
        cfg = FAST.with_(
            systems=("mpi_p2p", "spark"),
            problem_sizes=tuple(8**e for e in range(10)),
        )
        eff = figure6_7(cfg)["efficiency"]

        def gran_at_50(label):
            s = eff.get(label)
            return min(
                (x for x, y in zip(s.x, s.y) if y >= 0.5), default=float("inf")
            )

        assert gran_at_50("spark") > 100 * gran_at_50("mpi_p2p")


class TestFigure8:
    def test_memory_throughput_saturates(self):
        fig = figure8(FAST, systems=("mpi_p2p",))
        s = fig.get("mpi_p2p")
        assert s.y == sorted(s.y)
        machine = FAST.machine(1)
        assert max(s.y) > 0.8 * machine.peak_bytes_per_second


class TestFigure9:
    def test_metg_rises_with_nodes(self):
        cfg = FAST.with_(systems=("mpi_p2p", "charmpp"))
        fig = figure9("a", cfg)
        for s in fig.series:
            assert s.y[-1] > s.y[0]

    def test_unknown_subfigure(self):
        with pytest.raises(ValueError, match="subfigure"):
            figure9("z", FAST)

    def test_spark_rises_immediately(self):
        """§5.4: the centralized controller makes Spark's METG grow with
        node count from the start."""
        cfg = FAST.with_(systems=("spark",), steps=8)
        fig = figure9("a", cfg)
        s = fig.get("spark")
        assert s.y[1] > 2 * s.y[0]

    def test_task_parallel_variant_runs(self):
        cfg = FAST.with_(systems=("mpi_p2p",), node_counts=(1, 4))
        fig = figure9("d", cfg)
        assert fig.get("mpi_p2p").y


class TestFigure10:
    def test_metg_grows_with_dependencies(self):
        cfg = FAST.with_(systems=("mpi_p2p",))
        fig = figure10(cfg, radices=(0, 3, 9))
        s = fig.get("mpi_p2p")
        assert s.y[0] < s.y[1] < s.y[2]

    def test_zero_vs_three_deps_ratio(self):
        """§5.5: MPI's 0->3 dependency METG ratio is large (12x measured)."""
        cfg = FAST.with_(systems=("mpi_p2p",))
        fig = figure10(cfg, radices=(0, 3))
        s = fig.get("mpi_p2p")
        assert s.y[1] / s.y[0] > 4


class TestFigure11:
    def test_async_beats_phased_at_small_granularity(self):
        """§5.6: asynchronous systems execute smaller granularities at
        higher efficiency when communication must be hidden."""
        cfg = FAST.with_(systems=("mpi_bulk_sync", "realm"))
        fig = figure11(output_bytes=4096, cfg=cfg, nodes=4)

        def gran_at_50(label):
            s = fig.get(label)
            return min(
                (x for x, y in zip(s.x, s.y) if y >= 0.5), default=float("inf")
            )

        assert gran_at_50("realm") < gran_at_50("mpi_bulk_sync")


class TestFigure12:
    def test_bulk_sync_capped_async_higher(self):
        """§5.7: imbalance bounds bulk-sync efficiency; async and stealing
        recover it."""
        cfg = FAST.with_(
            systems=("mpi_bulk_sync", "charmpp", "chapel_distrib"),
            problem_sizes=tuple(8**e for e in range(8)),
        )
        fig = figure12(cfg)
        caps = {s.label: max(s.y) for s in fig.series}
        assert caps["mpi_bulk_sync"] < 0.75
        assert caps["charmpp"] > caps["mpi_bulk_sync"]
        assert caps["chapel_distrib"] > caps["mpi_bulk_sync"]


class TestFigure13:
    def test_series(self):
        fig = figure13()
        assert set(fig.labels) == {"mpi_cpu", "mpi_cuda_w1", "mpi_cuda_w4"}


class TestReport:
    def fig(self):
        return FigureData(
            "figX", "demo", "x", "y",
            [Series("a", [1.0, 2.0], [1e9, 2e9]), Series("b", [1.0], [5e-6])],
        )

    def test_format_quantity(self):
        assert format_quantity(1.26e12) == "1.26T"
        assert format_quantity(4.6e-6, "s") == "4.6us"
        assert format_quantity(0) == "0"
        assert format_quantity(250) == "250"

    def test_table_contains_all_series(self):
        text = render_series_table(self.fig())
        assert "a" in text and "b" in text and "figX" in text
        assert "1G" in text

    def test_missing_points_dashed(self):
        text = render_series_table(self.fig())
        assert "-" in text

    def test_markdown_table(self):
        md = render_markdown_table(self.fig())
        assert md.startswith("**figX")
        assert "| a |" in md

    def test_summarize_extremes(self):
        text = summarize_extremes(self.fig())
        assert "figX a" in text and "[" in text

    def test_max_points_subsamples(self):
        big = FigureData(
            "f", "t", "x", "y",
            [Series("s", list(map(float, range(100))), [1.0] * 100)],
        )
        text = render_series_table(big, max_points=5)
        assert len(text.splitlines()[2].split()) <= 8
