"""Differential executor-conformance suite.

Every registered executor must produce *bytewise identical* task outputs to
the serial executor for the same graphs — the strongest statement the repo
can make that the fourteen scheduling strategies implement one semantics.
Outputs are snapshotted at publish time via
:func:`repro.runtimes._common.capturing_outputs`, so pooled/zero-copy data
planes are checked at exactly the moment consumers could observe them.

The compared domain is every task with at least one consumer (tasks whose
output crosses an edge); final-frontier outputs are dropped by all
executors symmetrically and their correctness is covered by input
validation of the runs themselves, which stays enabled throughout.

A second axis runs each executor under the happens-before audit
(``repro.check.audit_run``) and requires a diagnostic-free schedule.

Marked ``conformance``: the suite is tier-1, and CI additionally runs it as
its own parallel leg.

Setting ``TASKBENCH_SANITIZE=1`` additionally runs every captured run under
the lockset sanitizer (:mod:`repro.check.concurrency`) and fails on any
race finding — CI runs the threads/dataflow subset this way, so the
same-address-space schedulers are continuously checked against lock-free
publish paths, not just against bytewise output equality.
"""

from __future__ import annotations

import contextlib
import os

import pytest

from repro.check import audit_run
from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.core.diagnostics import Severity
from repro.runtimes import available_runtimes, make_executor
from repro.runtimes._common import capturing_outputs, consumer_count

pytestmark = pytest.mark.conformance

ALL_RUNTIMES = available_runtimes()
#: Same-address-space executors: cheap to run, get the full matrix.
THREAD_SIDE = [
    r for r in ALL_RUNTIMES
    if r not in ("serial", "processes", "shm_processes")
    and not r.startswith("cluster_")
]
#: Cross-process executors fork a pool per instance; they get a reduced
#: but still heterogeneous slice of the matrix.
PROCESS_SIDE = ["processes", "shm_processes"]
#: Distributed executors fork a rank mesh per instance and move every
#: cross-rank payload over a real socket; same reduced slice.
CLUSTER_SIDE = ["cluster_tcp", "cluster_uds"]

DEP_TYPES = [
    DependenceType.TRIVIAL,
    DependenceType.NO_COMM,
    DependenceType.STENCIL_1D,
    DependenceType.STENCIL_1D_PERIODIC,
    DependenceType.FFT,
    DependenceType.TREE,
    DependenceType.RANDOM_NEAREST,
]

KERNELS = {
    "empty": dict(kernel=Kernel(kernel_type=KernelType.EMPTY)),
    "compute_bound": dict(
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=4)
    ),
    "memory_bound": dict(
        kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=2),
        scratch_bytes_per_task=4096,
    ),
}


def _graph(dep=DependenceType.STENCIL_1D, nbytes=4096, **kw) -> TaskGraph:
    kw.setdefault("timesteps", 6)
    kw.setdefault("max_width", 8)
    return TaskGraph(dependence=dep, output_bytes_per_task=nbytes, **kw)


#: Heterogeneous multi-graph workloads: mixed patterns, widths, payload
#: sizes, and kernels running concurrently under one executor.
HETEROGENEOUS = {
    "mixed_patterns": lambda: [
        _graph(DependenceType.STENCIL_1D, nbytes=256, graph_index=0),
        _graph(DependenceType.FFT, nbytes=4096, max_width=4, graph_index=1),
        _graph(DependenceType.TREE, nbytes=16, timesteps=4, graph_index=2),
    ],
    "mixed_kernels": lambda: [
        _graph(
            DependenceType.STENCIL_1D_PERIODIC,
            nbytes=1024,
            graph_index=0,
            **KERNELS["compute_bound"],
        ),
        _graph(
            DependenceType.RANDOM_NEAREST,
            nbytes=64,
            timesteps=5,
            graph_index=1,
            **KERNELS["memory_bound"],
        ),
    ],
}


def _communicated(graphs) -> set:
    """Keys of all tasks whose output feeds at least one consumer."""
    keys = set()
    for g in graphs:
        for t, i in g.points():
            if consumer_count(g, t, i) > 0:
                keys.add((g.graph_index, t, i))
    return keys


#: Opt-in: run every captured run under the lockset sanitizer.
_SANITIZE = bool(os.environ.get("TASKBENCH_SANITIZE", "").strip())


@contextlib.contextmanager
def _maybe_sanitized():
    """Instrumented locks + race check when TASKBENCH_SANITIZE is set.

    The executor must be constructed *inside* this context so its locks
    are sanitized (see :func:`repro.check.concurrency.instrument`)."""
    if not _SANITIZE:
        yield None
        return
    from repro.check import instrument

    with instrument() as sanitizer:
        yield sanitizer


def _run_captured(runtime: str, graphs) -> dict:
    """Outputs published by one run, restricted to communicated tasks."""
    with _maybe_sanitized() as sanitizer:
        ex = make_executor(runtime, workers=2)
        try:
            with capturing_outputs() as sink:
                result = ex.run(graphs)
        finally:
            if hasattr(ex, "close"):
                ex.close()
    if sanitizer is not None:
        assert not sanitizer.diagnostics, [
            d.render() for d in sanitizer.diagnostics
        ]
    assert result.total_tasks == sum(g.total_tasks() for g in graphs)
    expected = _communicated(graphs)
    missing = expected - sink.keys()
    assert not missing, f"{runtime} never published {sorted(missing)[:5]}"
    return {k: sink[k] for k in expected}


class _SerialReference:
    """Memoized serial-executor output maps, keyed by scenario id (the
    graphs are rebuilt per use, so executors never share instances)."""

    def __init__(self) -> None:
        self._cache: dict = {}

    def __call__(self, scenario_id: str, graph_factory) -> dict:
        if scenario_id not in self._cache:
            self._cache[scenario_id] = _run_captured("serial", graph_factory())
        return self._cache[scenario_id]


@pytest.fixture(scope="module")
def serial_reference():
    return _SerialReference()


@pytest.mark.parametrize("dep", DEP_TYPES, ids=lambda d: d.value)
@pytest.mark.parametrize("runtime", THREAD_SIDE)
@pytest.mark.parametrize("nbytes", [16, 4096])
def test_thread_side_matches_serial(runtime, dep, nbytes, serial_reference):
    factory = lambda: [_graph(dep, nbytes=nbytes)]  # noqa: E731
    reference = serial_reference(f"dep-{dep.value}-{nbytes}", factory)
    assert _run_captured(runtime, factory()) == reference


@pytest.mark.parametrize("kernel", sorted(KERNELS), ids=str)
@pytest.mark.parametrize("runtime", THREAD_SIDE)
def test_thread_side_kernels_match_serial(runtime, kernel, serial_reference):
    factory = lambda: [_graph(**KERNELS[kernel])]  # noqa: E731
    reference = serial_reference(f"kernel-{kernel}", factory)
    assert _run_captured(runtime, factory()) == reference


@pytest.mark.parametrize(
    "dep",
    [DependenceType.STENCIL_1D, DependenceType.FFT, DependenceType.RANDOM_NEAREST],
    ids=lambda d: d.value,
)
@pytest.mark.parametrize("runtime", PROCESS_SIDE)
@pytest.mark.parametrize("nbytes", [16, 4096])
def test_process_side_matches_serial(runtime, dep, nbytes, serial_reference):
    factory = lambda: [_graph(dep, nbytes=nbytes)]  # noqa: E731
    reference = serial_reference(f"dep-{dep.value}-{nbytes}", factory)
    assert _run_captured(runtime, factory()) == reference


@pytest.mark.parametrize(
    "dep",
    [DependenceType.STENCIL_1D, DependenceType.FFT, DependenceType.RANDOM_NEAREST],
    ids=lambda d: d.value,
)
@pytest.mark.parametrize("runtime", CLUSTER_SIDE)
@pytest.mark.parametrize("nbytes", [16, 4096])
def test_cluster_side_matches_serial(runtime, dep, nbytes, serial_reference):
    """Bytewise conformance across a process *and* a wire boundary: what
    the ranks serialize, send, and reconstruct must equal what the serial
    executor computes in place."""
    factory = lambda: [_graph(dep, nbytes=nbytes)]  # noqa: E731
    reference = serial_reference(f"dep-{dep.value}-{nbytes}", factory)
    assert _run_captured(runtime, factory()) == reference


@pytest.mark.parametrize("scenario", sorted(HETEROGENEOUS), ids=str)
@pytest.mark.parametrize("runtime", THREAD_SIDE + PROCESS_SIDE + CLUSTER_SIDE)
def test_heterogeneous_graphs_match_serial(runtime, scenario, serial_reference):
    factory = HETEROGENEOUS[scenario]
    reference = serial_reference(f"hetero-{scenario}", factory)
    assert _run_captured(runtime, factory()) == reference


@pytest.mark.parametrize("runtime", ALL_RUNTIMES)
def test_audit_clean_schedule(runtime):
    """Every executor's event trace passes the happens-before audit on a
    communication-bearing pattern."""
    ex = make_executor(runtime, workers=2)
    try:
        result = audit_run(ex, [_graph(DependenceType.STENCIL_1D, nbytes=256)])
    finally:
        if hasattr(ex, "close"):
            ex.close()
    problems = [d for d in result.diagnostics if d.severity > Severity.INFO]
    assert not problems, problems


# ---------------------------------------------------------------------------
# Trace conformance (tier: traceconf)
# ---------------------------------------------------------------------------
#
# Every registered executor runs a small communication-bearing graph under
# the span recorder; the merged trace must be well-formed — no negative
# durations, spans properly nested per thread track, per-buffer timestamps
# monotone after rank clock alignment, and exactly one kernel span per
# task.  This is the wall-clock complement of the bytewise tier above:
# same graphs, same executors, but checking *when* instead of *what*.

@pytest.mark.traceconf
@pytest.mark.parametrize("runtime", ALL_RUNTIMES)
def test_trace_well_formed(runtime):
    from repro.trace import recorder as trace
    from repro.trace.conformance import check_trace

    graphs = [_graph(DependenceType.STENCIL_1D, nbytes=256)]
    ex = make_executor(runtime, workers=2)
    try:
        with trace.capture() as rec:
            ex.run(graphs)
            tr = rec.collect()
    finally:
        if hasattr(ex, "close"):
            ex.close()
    assert tr.dropped == 0
    problems = check_trace(tr, graphs)
    assert not problems, problems


@pytest.mark.traceconf
@pytest.mark.parametrize("runtime", ["threads", "processes", "cluster_uds"])
def test_trace_heterogeneous_well_formed(runtime):
    """Multi-graph workloads trace cleanly across isolation levels: one
    kernel span per task even when several graphs interleave on the same
    worker tracks."""
    from repro.trace import recorder as trace
    from repro.trace.conformance import check_trace

    graphs = HETEROGENEOUS["mixed_patterns"]()
    ex = make_executor(runtime, workers=2)
    try:
        with trace.capture() as rec:
            ex.run(graphs)
            tr = rec.collect()
    finally:
        if hasattr(ex, "close"):
            ex.close()
    assert not check_trace(tr, graphs), check_trace(tr, graphs)


@pytest.mark.traceconf
@pytest.mark.parametrize("runtime", ["threads", "shm_processes", "cluster_uds"])
def test_trace_export_round_trip(runtime, tmp_path):
    """The Chrome export of a real traced run is schema-valid and loads
    back with every kernel span intact."""
    import json

    from repro.trace import recorder as trace
    from repro.trace.export import load_chrome, validate_chrome, write_chrome

    graphs = [_graph(DependenceType.STENCIL_1D, nbytes=256)]
    ex = make_executor(runtime, workers=2)
    try:
        with trace.capture() as rec:
            ex.run(graphs)
            tr = rec.collect()
    finally:
        if hasattr(ex, "close"):
            ex.close()
    path = tmp_path / "trace.json"
    write_chrome(tr, str(path))
    with open(path, encoding="utf-8") as fh:
        assert validate_chrome(json.load(fh)) == []
    loaded = load_chrome(str(path))
    assert len(loaded.kernel_spans()) == len(tr.kernel_spans())
    assert len(tr.kernel_spans()) == sum(g.total_tasks() for g in graphs)
