"""Unit and property tests for the span tracer (repro.trace).

Layers, bottom-up:

* the recorder: bounded per-thread buffers with an exact drop counter
  (property: at/below capacity nothing drops; above it, the counter
  equals the excess exactly);
* merging: K rank dumps under arbitrary clock skews merge into a single
  timeline that is sorted and collision-free in its track names
  (property over random skews and buffer shapes);
* the Chrome exporter: schema-valid output, value-preserving round trip
  through ``write_chrome``/``load_chrome``, and a validator that actually
  rejects malformed documents;
* the wire TRACE frame: exact round trip, loud failure on corruption;
* the Gantt renderer: structured spans render, empty/zero-span traces
  degrade gracefully (the historical ``ev[4]``/``ev[5]`` regression);
* the CLI: ``--trace`` writes a valid file, the ``trace`` subcommand
  summarizes and renders it, and the flag exclusions hold.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.cluster.wire import MSG_TRACE, WireError, decode, encode_trace
from repro.trace import recorder as trace
from repro.trace.conformance import check_trace
from repro.trace.export import (
    load_chrome,
    to_chrome,
    validate_chrome,
    write_chrome,
)
from repro.trace.merge import align_offset, merge_dumps
from repro.trace.recorder import SpanRecorder, Trace, TraceRecord


def _event(ts, dur=1, name="task", cat=trace.CAT_KERNEL, args=None):
    return ("X", name, cat, ts, dur, args)


# ---------------------------------------------------------------------------
# Recorder capacity and drops
# ---------------------------------------------------------------------------


class TestRecorderBounds:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        extra=st.integers(min_value=0, max_value=100),
    )
    def test_drop_counter_is_exact(self, capacity, extra):
        """<= capacity: everything kept.  Beyond: exactly the excess is
        dropped, and the kept prefix is untouched (drop-newest)."""
        rec = SpanRecorder(capacity_per_thread=capacity)
        total = capacity + extra
        for n in range(total):
            rec.add(_event(n, args={"task": (0, 0, n)}))
        tr = rec.collect()
        assert len(tr.records) == min(total, capacity)
        assert tr.dropped == max(0, total - capacity)
        kept = [r.args["task"][2] for r in tr.records]
        assert kept == list(range(min(total, capacity)))

    def test_threads_record_into_distinct_tracks(self):
        rec = SpanRecorder(capacity_per_thread=256)
        barrier = threading.Barrier(4)

        def work(k):
            barrier.wait()
            for n in range(50):
                rec.add(_event(n, args={"task": (k, 0, n)}))

        threads = [threading.Thread(target=work, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tr = rec.collect()
        assert len(tr.records) == 200
        assert tr.dropped == 0
        assert len(tr.tracks()) == 4
        for records in tr.tracks().values():
            assert len(records) == 50

    def test_capture_is_exclusive_and_restores_disabled(self):
        assert not trace.enabled
        with trace.capture() as rec:
            assert trace.enabled
            with pytest.raises(RuntimeError):
                with trace.capture():
                    pass  # pragma: no cover
            trace.complete("task", trace.CAT_KERNEL, trace.begin())
            assert len(rec.collect().records) == 1
        assert not trace.enabled
        assert trace.active() is None

    def test_disabled_module_api_is_inert(self):
        trace.complete("task", trace.CAT_KERNEL, trace.begin())
        trace.instant("x")
        trace.counter("c", {"v": 1})
        assert trace.active() is None


# ---------------------------------------------------------------------------
# Merging under clock skew
# ---------------------------------------------------------------------------


class TestMerge:
    @settings(max_examples=60, deadline=None)
    @given(
        ranks=st.integers(min_value=1, max_value=5),
        skews=st.lists(
            st.integers(min_value=-10**12, max_value=10**12),
            min_size=5,
            max_size=5,
        ),
        counts=st.lists(
            st.integers(min_value=0, max_value=20), min_size=5, max_size=5
        ),
    )
    def test_merged_timeline_is_monotone_and_collision_free(
        self, ranks, skews, counts
    ):
        """Merging K skewed rank dumps yields one timeline sorted by
        timestamp, with every rank's records intact under distinct track
        names and timestamps shifted by exactly its offset."""
        parts = []
        for r in range(ranks):
            events = [_event(1000 * n, args=None) for n in range(counts[r])]
            parts.append((f"rank-{r}", skews[r], [["MainThread", 0, events]]))
        tr = merge_dumps(parts)
        assert len(tr.records) == sum(counts[:ranks])
        ts = [rec.ts_ns for rec in tr.records]
        assert ts == sorted(ts)
        for r in range(ranks):
            track = [rec for rec in tr.records if rec.pid == f"rank-{r}"]
            assert [rec.ts_ns for rec in track] == [
                1000 * n + skews[r] for n in range(counts[r])
            ]
        # One track per (pid, tid): no rank's records were folded into
        # another's despite every dump reusing the tid "MainThread".
        assert len(tr.tracks()) == sum(1 for r in range(ranks) if counts[r])

    def test_same_pid_tid_collisions_are_suffixed(self):
        events = [_event(0)]
        tr = merge_dumps(
            [
                ("w", 0, [["t", 0, events], ["t", 0, events]]),
            ]
        )
        assert sorted(tid for _, tid in tr.tracks()) == ["t", "t~2"]

    def test_align_offset_midpoint(self):
        # Parent sends at 100, receives at 300; rank clock read 5000 at
        # the midpoint estimate 200 -> offset -4800 maps 5000 to 200.
        off = align_offset(100, 300, 5000)
        assert 5000 + off == 200

    def test_dropped_counts_accumulate(self):
        tr = merge_dumps(
            [
                ("a", 0, [["t", 3, [_event(0)]]]),
                ("b", 0, [["t", 4, []]]),
            ]
        )
        assert tr.dropped == 7


# ---------------------------------------------------------------------------
# Chrome export
# ---------------------------------------------------------------------------


def _sample_trace() -> Trace:
    records = [
        TraceRecord("X", "main", "t0", "task", trace.CAT_KERNEL, 2000, 1500,
                    {"task": (0, 1, 2)}),
        TraceRecord("i", "main", "t0", "acquire", trace.CAT_SCHED, 3000, 0,
                    {"task": (0, 1, 2), "source": (0, 0, 2)}),
        TraceRecord("C", "main", "t0", "wire.bytes", trace.CAT_WIRE, 3500, 0,
                    {"sent": 10, "received": 4}),
    ]
    return Trace(records, dropped=3)


class TestChromeExport:
    def test_export_is_schema_valid(self):
        obj = json.loads(json.dumps(to_chrome(_sample_trace())))
        assert validate_chrome(obj) == []
        assert obj["otherData"]["dropped_events"] == 3
        # Timestamps are rebased so the earliest event sits at 0 us.
        assert min(e["ts"] for e in obj["traceEvents"]) == 0

    def test_round_trip_preserves_values(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome(_sample_trace(), path)
        tr = load_chrome(path)
        assert tr.dropped == 3
        [span] = tr.spans
        assert span.name == "task"
        assert span.cat == trace.CAT_KERNEL
        assert span.dur_ns == 1500
        assert span.args["task"] == (0, 1, 2)
        [inst] = tr.instants
        assert inst.args["source"] == (0, 0, 2)
        [ctr] = tr.counters
        assert ctr.args == {"sent": 10, "received": 4}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda o: o.__setitem__("traceEvents", {}),
            lambda o: o["traceEvents"][0].pop("ph"),
            lambda o: o["traceEvents"][0].__setitem__("ph", "Z"),
            lambda o: o["traceEvents"][0].__setitem__("pid", 7),
            lambda o: o["traceEvents"][0].__setitem__("dur", -1.0),
            lambda o: o["traceEvents"][0].pop("ts"),
        ],
        ids=["events-not-list", "no-ph", "bad-ph", "int-pid", "neg-dur",
             "no-ts"],
    )
    def test_validator_rejects_malformed(self, mutate):
        obj = to_chrome(_sample_trace())
        obj = json.loads(json.dumps(obj))
        mutate(obj)
        assert validate_chrome(obj)

    def test_load_rejects_invalid_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"name": "x"}]}')
        with pytest.raises(ValueError):
            load_chrome(str(path))


# ---------------------------------------------------------------------------
# Wire TRACE frames
# ---------------------------------------------------------------------------


class TestWireTrace:
    def test_round_trip(self):
        buffers = [["MainThread", 2, [list(_event(5, args={"task": [0, 1, 2]}))]]]
        frame = encode_trace(3, 123456789, buffers)
        kind, rank, clock_ns, decoded = decode(memoryview(frame))
        assert (kind, rank, clock_ns) == (MSG_TRACE, 3, 123456789)
        assert decoded == buffers

    def test_corrupt_payload_raises(self):
        frame = encode_trace(0, 1, [])
        with pytest.raises(WireError):
            decode(memoryview(frame[:-1] + b"\xff"))

    def test_short_frame_raises(self):
        frame = encode_trace(0, 1, [])
        with pytest.raises(WireError):
            decode(memoryview(frame[:4]))

    def test_non_list_payload_raises(self):
        from repro.cluster.wire import TRACE_STRUCT

        frame = TRACE_STRUCT.pack(MSG_TRACE, 0, 1) + b'{"a": 1}'
        with pytest.raises(WireError):
            decode(memoryview(frame))


# ---------------------------------------------------------------------------
# Gantt over structured spans
# ---------------------------------------------------------------------------


class TestStructuredGantt:
    def test_renders_span_records(self):
        from repro.analysis import render_gantt

        records = [
            TraceRecord("X", "main", "w0", "task", trace.CAT_KERNEL, 0,
                        10_000_000, {"task": (0, 0, 0)}),
            TraceRecord("X", "main", "w1", "task", trace.CAT_KERNEL,
                        5_000_000, 10_000_000, {"task": (1, 0, 1)}),
            # Non-kernel spans must not occupy cells.
            TraceRecord("X", "main", "w0", "publish", trace.CAT_PUBLISH,
                        0, 20_000_000, None),
        ]
        text = render_gantt(records, width=20)
        assert "main/w0" in text and "main/w1" in text
        assert "0" in text and "1" in text
        assert "15 ms" in text

    def test_empty_trace_renders_placeholder(self):
        from repro.analysis import render_gantt

        assert "(empty trace)" in render_gantt([])
        # A trace with records but no kernel spans degrades the same way
        # (the historical ev[4]/ev[5] IndexError regression).
        only_instant = [
            TraceRecord("i", "main", "t", "acquire", trace.CAT_SCHED, 5, 0,
                        None)
        ]
        assert "(empty trace)" in render_gantt(only_instant)

    def test_zero_duration_spans_do_not_crash(self):
        from repro.analysis import render_gantt

        records = [
            TraceRecord("X", "main", "t", "task", trace.CAT_KERNEL, 100, 0,
                        {"task": (0, 0, 0)}),
        ]
        text = render_gantt(records)
        assert "main/t" in text

    def test_tuple_path_still_requires_num_workers(self):
        from repro.analysis import render_gantt

        with pytest.raises(ValueError, match="num_workers"):
            render_gantt([(0, 0, 0, 0, 0.0, 1.0)])
        assert "core 0" in render_gantt([(0, 0, 0, 0, 0.0, 1.0)], 1)


# ---------------------------------------------------------------------------
# Conformance checker on synthetic traces
# ---------------------------------------------------------------------------


class TestChecker:
    def test_flags_negative_duration(self):
        tr = Trace([TraceRecord("X", "p", "t", "task", trace.CAT_KERNEL,
                                10, -5, None)])
        assert any("negative" in p for p in check_trace(tr))

    def test_flags_interleaved_spans_on_one_track(self):
        tr = Trace([
            TraceRecord("X", "p", "t", "a", trace.CAT_DISPATCH, 0, 10, None),
            TraceRecord("X", "p", "t", "b", trace.CAT_DISPATCH, 5, 10, None),
        ])
        assert check_trace(tr)

    def test_clean_nesting_passes(self):
        # Recorded order follows span *completion* (complete() appends at
        # end time), so the inner span lands in the buffer first.
        tr = Trace([
            TraceRecord("X", "p", "t", "inner", trace.CAT_KERNEL, 5, 10,
                        {"task": (0, 0, 0)}),
            TraceRecord("X", "p", "t", "outer", trace.CAT_DISPATCH, 0, 20,
                        None),
        ])
        assert check_trace(tr) == []


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

_RUN_ARGS = [
    "-steps", "4", "-width", "4", "-type", "stencil_1d",
    "-kernel", "empty", "-runtime", "threads", "-workers", "2",
]


class TestCLI:
    def test_trace_flag_writes_valid_chrome_json(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        assert main(_RUN_ARGS + ["--trace", path]) == 0
        out = capsys.readouterr().out
        assert "Trace Spans" in out
        with open(path, encoding="utf-8") as fh:
            obj = json.load(fh)
        assert validate_chrome(obj) == []
        kernels = [
            e for e in obj["traceEvents"]
            if e.get("ph") == "X" and e.get("cat") == "kernel"
        ]
        assert len(kernels) == 16

    def test_trace_subcommand_summary_and_gantt(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        assert main(_RUN_ARGS + ["--trace", path]) == 0
        capsys.readouterr()
        assert main(["trace", path]) == 0
        assert "kernel spans" in capsys.readouterr().out
        assert main(["trace", path, "--gantt"]) == 0
        assert "cells: digit = graph index" in capsys.readouterr().out

    def test_trace_subcommand_rejects_invalid(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["trace", str(bad)]) == 1
        assert main(["trace", str(tmp_path / "missing.json")]) == 2
        assert main(["trace"]) == 2

    def test_trace_flag_exclusions(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        assert main(_RUN_ARGS + ["--trace", path, "-metg"]) == 2
        assert main(_RUN_ARGS + ["--trace", path, "--audit"]) == 2
        assert main(_RUN_ARGS + ["--trace", path, "--sanitize"]) == 2
        assert main(_RUN_ARGS + ["--trace"]) == 2
        sim = ["-steps", "4", "-width", "4", "-runtime", "sim:mpi_p2p",
               "--trace", path]
        assert main(sim) == 2
