"""Tests for repro.serve — the benchmark-as-a-service daemon.

Covers the protocol layer (framing + request validation), the result
cache and single-flight coalescing, the warm executor pool (LRU / TTL /
heal-on-checkout), and the daemon lifecycle: concurrent clients,
duplicate-submission coalescing, BUSY backpressure at queue capacity,
per-job deadline kills, DRAIN semantics, and SIGTERM shutdown of the
real CLI daemon.
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.serve import (
    ResultCache,
    ServeClient,
    ServeConfig,
    ServeError,
    Server,
    WarmPool,
    cell_fingerprint,
)
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.suite.spec import Cell, SpecError, validate_cell

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
#: compute_bound iterations giving roughly this long a single task on the
#: test host (calibrated coarsely; tests only need "fast" vs "slow").
FAST_ITERS = 2_000
SLOW_ITERS = 1_500_000  # ~1s of kernel work: a wide-enough race window


def make_cell(**overrides) -> dict:
    cell = {
        "runtime": "serial", "pattern": "trivial", "width": 2, "steps": 2,
        "payload_bytes": 16, "metric": "run", "iterations": FAST_ITERS,
    }
    cell.update(overrides)
    return cell


@pytest.fixture
def serve_factory():
    """Builds started servers on short-lived UDS paths; closes them all."""
    servers = []
    tmp = tempfile.mkdtemp(prefix="tb-serve-")

    def make(**kw) -> Server:
        kw.setdefault("address", os.path.join(tmp, f"s{len(servers)}.sock"))
        srv = Server(ServeConfig(**kw))
        srv.start()
        servers.append(srv)
        return srv

    yield make
    for srv in servers:
        srv.close()


def wait_for_state(client: ServeClient, job: str, state: str,
                   timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.status(job)["state"] == state:
            return
        time.sleep(0.01)
    raise AssertionError(f"job {job} never reached state {state!r}")


# ---------------------------------------------------------------------------
# Protocol: framing + request validation
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            body = {"verb": "STATUS", "job": "j000001", "n": [1, 2, 3]}
            protocol.send_frame(a, body)
            assert protocol.recv_frame(b) == body
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert protocol.recv_frame(b) is None
        finally:
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(protocol.LEN_STRUCT.pack(100) + b"{")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(protocol.LEN_STRUCT.pack(protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_body_rejected(self):
        a, b = socket.socketpair()
        try:
            payload = b"[1,2]"
            a.sendall(protocol.LEN_STRUCT.pack(len(payload)) + payload)
            with pytest.raises(ProtocolError, match="JSON object"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize("body,message", [
        ({}, "unknown verb"),
        ({"verb": "NUKE"}, "unknown verb"),
        ({"verb": "SUBMIT"}, "requires field 'cell'"),
        ({"verb": "SUBMIT", "cell": 3}, "field 'cell' must be dict"),
        ({"verb": "STATUS"}, "requires field 'job'"),
        ({"verb": "STATUS", "job": 7}, "field 'job' must be str"),
        ({"verb": "RESULT", "job": "j1", "timeout": "soon"},
         "field 'timeout' must be int or float"),
        ({"verb": "STATS", "extra": 1}, "does not accept field 'extra'"),
    ])
    def test_request_validation_matrix(self, body, message):
        with pytest.raises(ProtocolError, match=message):
            protocol.validate_request(body)

    def test_valid_requests_pass(self):
        assert protocol.validate_request({"verb": "STATS"}) == "STATS"
        assert protocol.validate_request(
            {"verb": "RESULT", "job": "j1", "timeout": 5}
        ) == "RESULT"


# ---------------------------------------------------------------------------
# Cell validation (server-side SUBMIT hygiene)
# ---------------------------------------------------------------------------
class TestValidateCell:
    def test_good_cell(self):
        validate_cell(Cell(**make_cell()))

    @pytest.mark.parametrize("overrides,message", [
        ({"runtime": "slurm"}, "unknown runtime"),
        ({"runtime": "sim:hadoop"}, "unknown simulated system"),
        ({"pattern": "donut"}, "donut"),
        ({"metric": "vibes"}, "unknown metric"),
        ({"width": 0}, "width"),
        ({"steps": -1}, "steps"),
        ({"payload_bytes": -8}, "payload_bytes"),
        ({"workers": 0}, "workers"),
        ({"target": 1.5}, "target"),
        ({"timeout": 0.0}, "timeout"),
    ])
    def test_bad_cells(self, overrides, message):
        with pytest.raises(SpecError, match=message):
            validate_cell(Cell(**make_cell(**overrides)))


# ---------------------------------------------------------------------------
# Fingerprint + result cache + single flight
# ---------------------------------------------------------------------------
class TestResultCache:
    def test_fingerprint_covers_every_parameter(self):
        base = Cell(**make_cell())
        assert cell_fingerprint(base) == cell_fingerprint(Cell(**make_cell()))
        for overrides in ({"width": 3}, {"iterations": 999},
                          {"workers": 3}, {"kernel": "memory_bound"},
                          {"metric": "metg"}, {"target": 0.75}):
            other = Cell(**make_cell(**overrides))
            assert cell_fingerprint(other) != cell_fingerprint(base)

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            assert cache.put(f"f{i}", {"status": "ok", "i": i})
        assert cache.get("f0") is None  # evicted
        assert cache.get("f2")["i"] == 2

    def test_get_freshens(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"status": "ok"})
        cache.put("b", {"status": "ok"})
        cache.get("a")  # a is now most recent
        cache.put("c", {"status": "ok"})
        assert cache.get("a") is not None
        assert cache.get("b") is None

    def test_failed_records_never_cached(self):
        cache = ResultCache()
        assert not cache.put("f", {"status": "failed", "error": "boom"})
        assert cache.get("f") is None
        assert cache.put("u", {"status": "unachievable"})

    def test_single_flight_table(self):
        cache = ResultCache()
        assert cache.lookup_inflight("f") is None
        cache.enter_inflight("f", "j1")
        assert cache.lookup_inflight("f") == "j1"
        cache.leave_inflight("f", "j2")  # not the leader: no-op
        assert cache.lookup_inflight("f") == "j1"
        cache.leave_inflight("f", "j1")
        assert cache.lookup_inflight("f") is None


# ---------------------------------------------------------------------------
# Warm pool + executor healing
# ---------------------------------------------------------------------------
class TestWarmPool:
    def test_cold_then_warm(self):
        pool = WarmPool(capacity=2, ttl_seconds=60.0)
        try:
            ex1, warm = pool.checkout("serial", 1)
            assert not warm
            pool.checkin("serial", 1, None, ex1)
            ex2, warm = pool.checkout("serial", 1)
            assert warm
            assert ex2 is ex1
            assert pool.stats["warm_hits"] == 1
            assert pool.stats["cold_builds"] == 1
        finally:
            pool.close()

    def test_key_includes_workers(self):
        pool = WarmPool(capacity=4, ttl_seconds=60.0)
        try:
            ex1, _ = pool.checkout("threads", 2)
            pool.checkin("threads", 2, None, ex1)
            _, warm = pool.checkout("threads", 3)
            assert not warm  # different worker count: different executor
        finally:
            pool.close()

    def test_lru_eviction(self):
        pool = WarmPool(capacity=1, ttl_seconds=60.0)
        try:
            ex_a, _ = pool.checkout("serial", 1)
            ex_b, _ = pool.checkout("threads", 2)
            pool.checkin("serial", 1, None, ex_a)
            pool.checkin("threads", 2, None, ex_b)  # evicts serial
            assert len(pool) == 1
            _, warm = pool.checkout("serial", 1)
            assert not warm
            assert pool.stats["lru_evictions"] == 1
        finally:
            pool.close()

    def test_ttl_expiry(self):
        pool = WarmPool(capacity=2, ttl_seconds=0.05)
        try:
            ex1, _ = pool.checkout("serial", 1)
            pool.checkin("serial", 1, None, ex1)
            time.sleep(0.1)
            _, warm = pool.checkout("serial", 1)
            assert not warm
            assert pool.stats["ttl_evictions"] == 1
        finally:
            pool.close()

    def test_heal_on_checkout_after_worker_kill(self):
        """A cached fork-pool executor whose worker was SIGKILLed while
        idle is healed on checkout, not handed out broken."""
        pool = WarmPool(capacity=2, ttl_seconds=60.0)
        try:
            executor, _ = pool.checkout("processes", 2)
            graphs = Cell(**make_cell(runtime="processes")).graphs()
            executor.run(graphs, validate=False)  # forks the workers
            pool.checkin("processes", 2, None, executor)
            victim = executor._procs._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            healed, warm = pool.checkout("processes", 2)
            assert warm and healed is executor
            assert pool.stats["heals"] >= 1
            healed.run(graphs, validate=False)  # healthy again
        finally:
            pool.close()

    def test_executor_heal_contract(self):
        from repro.runtimes.registry import make_executor

        serial = make_executor("serial")
        assert serial.heal() == 0  # no out-of-process state: always healthy
        procs = make_executor("processes", workers=2)
        try:
            assert procs.heal() == 0  # lazy pool: nothing to heal yet
            graphs = Cell(**make_cell(runtime="processes")).graphs()
            procs.run(graphs, validate=False)
            victim = procs._procs._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            assert procs.heal() == 1
            procs.run(graphs, validate=False)
        finally:
            procs.close()


# ---------------------------------------------------------------------------
# Daemon lifecycle
# ---------------------------------------------------------------------------
class TestServer:
    def test_submit_result_and_cache_hit(self, serve_factory):
        srv = serve_factory()
        with ServeClient(srv.config.address) as client:
            first = client.submit(make_cell())
            assert first["state"] in ("queued", "running", "done")
            record = client.result(first["job"], timeout=30)
            assert record["status"] == "ok"
            assert record["measurements"]["elapsed_seconds"] > 0
            # Identical resubmission answers from the cache, instantly.
            second = client.submit(make_cell())
            assert second["cached"] is True
            assert second["state"] == "done"
            assert client.result(second["job"], timeout=5) == record
            stats = client.stats()
            assert stats["cache"]["hits"] == 1
            assert stats["jobs"]["admitted"] == 1

    def test_distinct_cells_do_not_coalesce(self, serve_factory):
        srv = serve_factory(max_jobs=2)
        with ServeClient(srv.config.address) as client:
            a = client.submit(make_cell(iterations=FAST_ITERS))
            b = client.submit(make_cell(iterations=FAST_ITERS + 1))
            assert a["job"] != b["job"]
            assert client.result(a["job"], timeout=30)["status"] == "ok"
            assert client.result(b["job"], timeout=30)["status"] == "ok"

    def test_concurrent_duplicates_coalesce_to_one_execution(
        self, serve_factory
    ):
        """The acceptance-criteria test: N concurrent identical
        submissions run once — one admitted job, one record, N-1
        coalesced joins."""
        srv = serve_factory(max_jobs=1)
        cell = make_cell(iterations=SLOW_ITERS)
        ids, records, errors = [], [], []

        def one_client():
            try:
                with ServeClient(srv.config.address) as client:
                    summary = client.submit(cell)
                    ids.append(summary["job"])
                    records.append(
                        client.result(summary["job"], timeout=60)
                    )
            except Exception as exc:  # surfaces in the main thread
                errors.append(exc)

        clients = [threading.Thread(target=one_client) for _ in range(4)]
        for t in clients:
            t.start()
        for t in clients:
            t.join(timeout=90)
        assert not errors
        assert len(set(ids)) == 1, f"expected one shared job, got {ids}"
        assert all(r["status"] == "ok" for r in records)
        with ServeClient(srv.config.address) as client:
            stats = client.stats()
        assert stats["jobs"]["admitted"] == 1
        assert stats["cache"]["coalesced"] == 3

    def test_busy_backpressure_at_queue_capacity(self, serve_factory):
        srv = serve_factory(max_jobs=1, queue_size=1)
        with ServeClient(srv.config.address) as client:
            running = client.submit(make_cell(iterations=SLOW_ITERS))
            wait_for_state(client, running["job"], "running")
            queued = client.submit(
                make_cell(iterations=SLOW_ITERS + 1)
            )
            assert queued["state"] == "queued"
            with pytest.raises(ServeError) as excinfo:
                client.submit(make_cell(iterations=SLOW_ITERS + 2))
            assert excinfo.value.code == "BUSY"
            # Backpressure is not failure: both accepted jobs complete.
            assert client.result(running["job"], timeout=60)["status"] == "ok"
            assert client.result(queued["job"], timeout=60)["status"] == "ok"
            assert client.stats()["rejections"]["busy"] == 1

    def test_invalid_submissions_rejected(self, serve_factory):
        srv = serve_factory()
        with ServeClient(srv.config.address) as client:
            for bad in (
                make_cell(runtime="slurm"),
                make_cell(width=0),
                dict(make_cell(), flux_capacitor=1),
            ):
                with pytest.raises(ServeError) as excinfo:
                    client.submit(bad)
                assert excinfo.value.code == "INVALID"
            assert client.stats()["rejections"]["invalid"] == 3

    def test_status_unknown_job(self, serve_factory):
        srv = serve_factory()
        with ServeClient(srv.config.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.status("j999999")
            assert excinfo.value.code == "UNKNOWN_JOB"

    def test_result_timeout(self, serve_factory):
        srv = serve_factory()
        with ServeClient(srv.config.address) as client:
            slow = client.submit(make_cell(iterations=SLOW_ITERS))
            with pytest.raises(ServeError) as excinfo:
                client.result(slow["job"], timeout=0.05)
            assert excinfo.value.code == "TIMEOUT"
            assert client.result(slow["job"], timeout=60)["status"] == "ok"

    def test_deadline_kill_frees_the_daemon(self, serve_factory):
        """A job that blows its deadline is killed (worker processes
        reaped), concluded as failed, and the daemon keeps serving."""
        srv = serve_factory(max_jobs=1, deadline=0.6)
        with ServeClient(srv.config.address) as client:
            stuck = client.submit(
                make_cell(runtime="processes", workers=2, width=1, steps=1,
                          iterations=30_000_000)
            )
            record = client.result(stuck["job"], timeout=30)
            assert record["status"] == "failed"
            assert "deadline exceeded" in record["error"]
            stats = client.stats()
            assert stats["jobs"]["deadline_kills"] == 1
            # The daemon is still healthy: a fast follow-up completes.
            quick = client.run(make_cell(), timeout=30)
            assert quick["status"] == "ok"

    def test_drain_semantics(self, serve_factory):
        """DRAIN finishes accepted jobs, rejects new ones, then quiesces."""
        srv = serve_factory(max_jobs=1)
        with ServeClient(srv.config.address) as client:
            accepted = client.submit(make_cell(iterations=SLOW_ITERS))
            wait_for_state(client, accepted["job"], "running")
            client.drain()
            with pytest.raises(ServeError) as excinfo:
                client.submit(make_cell(iterations=FAST_ITERS + 7))
            assert excinfo.value.code == "DRAINING"
            # The accepted job still runs to a real record.
            assert (
                client.result(accepted["job"], timeout=60)["status"] == "ok"
            )
        assert srv.wait(timeout=30), "daemon never quiesced after drain"

    def test_warm_pool_heal_after_crash_end_to_end(self, serve_factory):
        """SIGKILL a cached warm worker between requests: the next
        submission heals the pool instead of failing."""
        srv = serve_factory(max_jobs=1)
        cell = make_cell(runtime="processes", workers=2)
        with ServeClient(srv.config.address) as client:
            assert client.run(cell, timeout=60)["status"] == "ok"
            # Reach into the pool and murder a cached fork worker.
            (executor, _stamp), = srv._pool._entries.values()
            victim = executor._procs._procs[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(5.0)
            again = client.run(
                dict(cell, iterations=FAST_ITERS + 13), timeout=60
            )
            assert again["status"] == "ok"
            pool_stats = client.stats()["warm_pool"]
            assert pool_stats["heals"] >= 1
            assert pool_stats["warm_hits"] >= 1

    def test_stats_latency_percentiles(self, serve_factory):
        srv = serve_factory()
        with ServeClient(srv.config.address) as client:
            client.run(make_cell(), timeout=30)
            stats = client.stats()
            assert "SUBMIT" in stats["latency"]
            submit = stats["latency"]["SUBMIT"]
            assert submit["p50_seconds"] <= submit["p99_seconds"]

    def test_simulated_cells_served(self, serve_factory):
        srv = serve_factory()
        with ServeClient(srv.config.address) as client:
            record = client.run(
                make_cell(runtime="sim:mpi_p2p", workers=1), timeout=30
            )
            assert record["status"] == "ok"


# ---------------------------------------------------------------------------
# The real CLI daemon under SIGTERM
# ---------------------------------------------------------------------------
class TestCliDaemon:
    def test_sigterm_drains_and_exits(self, tmp_path):
        sock = os.path.join(
            tempfile.mkdtemp(prefix="tb-cli-"), "serve.sock"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--socket", sock],
            env=env, cwd=str(tmp_path),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 20
            while not os.path.exists(sock):
                assert daemon.poll() is None, daemon.stdout.read().decode()
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.05)
            with ServeClient(sock) as client:
                assert client.run(make_cell(), timeout=30)["status"] == "ok"
            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=30) == 0
            assert not os.path.exists(sock), "socket file leaked"
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)
