"""Smoke tests: the fast example scripts run to completion.

Examples are documentation that executes; these tests keep them from
rotting.  Only the quick ones run here (the figure-regeneration examples
take tens of seconds and are exercised by the benchmark harness instead).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py", "metg_stencil.py", "scaling_study.py",
        "communication_hiding.py", "load_imbalance.py", "gpu_offload.py",
        "application_scenarios.py", "paper_figures.py", "custom_study.py",
    } <= present


def test_quickstart():
    out = run_example("quickstart.py")
    assert "graph 0" in out
    assert "two concurrent graphs" in out
    assert "Total Tasks 600" in out


def test_gpu_offload():
    out = run_example("gpu_offload.py")
    assert "crossover" in out
    assert "TFLOP/s" in out


def test_load_imbalance():
    out = run_example("load_imbalance.py")
    assert "chapel_distrib" in out
    assert "peak efficiency" in out


@pytest.mark.slow
def test_metg_stencil():
    out = run_example("metg_stencil.py", timeout=600)
    assert "METG(50%)" in out
    assert "390 ns" in out
