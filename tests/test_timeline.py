"""Tests for trace collection and Gantt rendering."""

import pytest

from repro.analysis import idle_fraction, per_graph_spans, render_gantt
from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.sim import ARIES, IDEAL, MachineSpec, RuntimeModel, get_system, simulate_with_stats

M4 = MachineSpec(nodes=1, cores_per_node=4)


def graphs(n=1, iters=500, output=16):
    return [
        TaskGraph(
            timesteps=6,
            max_width=4,
            dependence=DependenceType.STENCIL_1D,
            kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=iters),
            output_bytes_per_task=output,
            graph_index=k,
        )
        for k in range(n)
    ]


def model(execution="async"):
    return RuntimeModel(name="m", execution=execution, task_overhead_s=0.0,
                        dep_overhead_s=0.0, send_overhead_s=0.0)


class TestTraceCollection:
    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_trace_covers_all_tasks(self, execution):
        gs = graphs()
        _, st = simulate_with_stats(gs, M4, model(execution), IDEAL,
                                    collect_trace=True)
        assert len(st.trace) == gs[0].total_tasks()
        keys = {(g, t, i) for g, t, i, _, _, _ in st.trace}
        assert len(keys) == len(st.trace)

    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_trace_intervals_well_formed(self, execution):
        _, st = simulate_with_stats(graphs(), M4, model(execution), IDEAL,
                                    collect_trace=True)
        for _, _, _, core, start, end in st.trace:
            assert 0 <= core < 4
            assert 0 <= start < end

    @pytest.mark.parametrize("execution", ["phased", "async"])
    def test_no_overlap_on_one_core(self, execution):
        _, st = simulate_with_stats(graphs(2), M4, model(execution), IDEAL,
                                    collect_trace=True)
        by_core = {}
        for _, _, _, core, start, end in st.trace:
            by_core.setdefault(core, []).append((start, end))
        for intervals in by_core.values():
            intervals.sort()
            for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-15

    def test_trace_disabled_by_default(self):
        _, st = simulate_with_stats(graphs(), M4, model(), IDEAL)
        assert st.trace is None

    def test_trace_ends_match_elapsed(self):
        r, st = simulate_with_stats(graphs(), M4, model(), IDEAL,
                                    collect_trace=True)
        assert max(e for *_, e in st.trace) == pytest.approx(r.elapsed_seconds)


class TestRenderGantt:
    def trace(self):
        _, st = simulate_with_stats(graphs(2), M4, model(), IDEAL,
                                    collect_trace=True)
        return st.trace

    def test_one_row_per_core(self):
        text = render_gantt(self.trace(), 4, width=40)
        assert sum(1 for l in text.splitlines() if "|" in l) == 4

    def test_graph_digits_present(self):
        text = render_gantt(self.trace(), 4)
        assert "0" in text and "1" in text

    def test_title_rendered(self):
        assert render_gantt(self.trace(), 4, title="demo").startswith("demo")

    def test_empty_trace(self):
        assert "(empty trace)" in render_gantt([], 4)

    def test_bad_args(self):
        with pytest.raises(ValueError):
            render_gantt([], 0)
        with pytest.raises(ValueError):
            render_gantt(self.trace(), 4, width=2)
        with pytest.raises(ValueError, match="core"):
            render_gantt([(0, 0, 0, 9, 0.0, 1.0)], 4)

    def test_width_respected(self):
        text = render_gantt(self.trace(), 4, width=32)
        rows = [l for l in text.splitlines() if "|" in l]
        assert all(len(r.split("|", 1)[1]) == 32 for r in rows)


class TestTraceAnalysis:
    def test_idle_fraction_bulk_vs_async(self):
        """The §5.6 phenomenon, quantified from the trace: phased
        bulk-sync execution idles while communicating; async overlaps."""
        m = MachineSpec(nodes=2, cores_per_node=4)
        gs = [
            TaskGraph(
                timesteps=8, max_width=8, dependence=DependenceType.SPREAD,
                radix=5,
                kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=300),
                output_bytes_per_task=65536, graph_index=k,
            )
            for k in range(2)
        ]
        bulk = get_system("mpi_bulk_sync")
        charm = get_system("charmpp").with_(runtime_cores_per_node=0)
        _, st_bulk = simulate_with_stats(gs, m, bulk, ARIES, collect_trace=True)
        _, st_charm = simulate_with_stats(gs, m, charm, ARIES, collect_trace=True)
        assert idle_fraction(st_bulk.trace, 8) > idle_fraction(st_charm.trace, 8) + 0.1

    def test_idle_fraction_zero_for_dense_trace(self):
        trace = [(0, 0, 0, 0, 0.0, 1.0), (0, 1, 0, 1, 0.0, 1.0)]
        assert idle_fraction(trace, 2) == pytest.approx(0.0)

    def test_idle_fraction_empty(self):
        assert idle_fraction([], 4) == 0.0

    def test_per_graph_spans_overlap(self):
        _, st = simulate_with_stats(graphs(2), M4, model(), IDEAL,
                                    collect_trace=True)
        spans = per_graph_spans(st.trace)
        assert set(spans) == {0, 1}
        (lo0, hi0), (lo1, hi1) = spans[0], spans[1]
        assert max(lo0, lo1) < min(hi0, hi1)  # the graphs overlap in time
