"""Unit tests for PTG graph expansion and p2p messaging components."""

import threading

import numpy as np
import pytest

from repro.core import DependenceType, TaskGraph
from repro.runtimes import ExpandedGraph, Mailbox, block_owner, expand
from repro.runtimes.p2p import _ExecutionFailure


def graphs():
    return [
        TaskGraph(timesteps=4, max_width=4,
                  dependence=DependenceType.STENCIL_1D, graph_index=0),
        TaskGraph(timesteps=3, max_width=2,
                  dependence=DependenceType.NO_COMM, graph_index=1),
    ]


class TestExpand:
    def test_task_count(self):
        dag = expand(graphs())
        assert dag.num_tasks == 16 + 6

    def test_edge_count_matches_graphs(self):
        gs = graphs()
        dag = expand(gs)
        assert dag.num_edges == sum(g.total_dependencies() for g in gs)

    def test_dep_counts_match(self):
        gs = graphs()
        dag = expand(gs)
        for k in range(dag.num_tasks):
            gi, t, i = (int(x) for x in dag.task_table[k])
            assert dag.dep_counts[k] == gs[gi].num_dependencies(t, i)

    def test_successors_point_to_next_timestep(self):
        dag = expand(graphs())
        for k in range(dag.num_tasks):
            _, t, _ = (int(x) for x in dag.task_table[k])
            for succ in dag.successors(k):
                _, t2, _ = (int(x) for x in dag.task_table[int(succ)])
                assert t2 == t + 1

    def test_roots_have_zero_deps(self):
        dag = expand(graphs())
        roots = np.flatnonzero(dag.dep_counts == 0)
        assert len(roots) == 4 + 2  # first timestep of both graphs

    def test_trivial_graph_no_edges(self):
        g = TaskGraph(timesteps=3, max_width=3)
        dag = expand([g])
        assert dag.num_edges == 0
        assert isinstance(dag, ExpandedGraph)


class TestBlockOwner:
    def test_even_partition(self):
        owners = [block_owner(i, 8, 4) for i in range(8)]
        assert owners == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_single_rank(self):
        assert all(block_owner(i, 5, 1) == 0 for i in range(5))

    def test_more_ranks_than_columns(self):
        owners = [block_owner(i, 2, 8) for i in range(2)]
        assert owners == [0, 4]  # spread across ranks, within bounds

    def test_owner_in_range(self):
        for width in (1, 3, 7, 16):
            for ranks in (1, 2, 5, 32):
                for i in range(width):
                    assert 0 <= block_owner(i, width, ranks) < ranks

    def test_monotone(self):
        owners = [block_owner(i, 13, 4) for i in range(13)]
        assert owners == sorted(owners)


class TestMailbox:
    def test_post_then_recv(self):
        mb = Mailbox(_ExecutionFailure())
        buf = np.arange(3, dtype=np.uint8)
        mb.post((0, 0, 0), buf, consumers=1)
        assert np.array_equal(mb.recv((0, 0, 0)), buf)
        assert len(mb) == 0

    def test_refcounted_delivery(self):
        mb = Mailbox(_ExecutionFailure())
        mb.post((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=3)
        mb.recv((0, 0, 0))
        mb.recv((0, 0, 0))
        assert len(mb) == 1
        mb.recv((0, 0, 0))
        assert len(mb) == 0

    def test_duplicate_post_rejected(self):
        mb = Mailbox(_ExecutionFailure())
        mb.post((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=1)
        with pytest.raises(RuntimeError, match="duplicate"):
            mb.post((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=1)

    def test_recv_blocks_until_post(self):
        mb = Mailbox(_ExecutionFailure())
        got = []

        def receiver():
            got.append(mb.recv((0, 1, 2)))

        th = threading.Thread(target=receiver)
        th.start()
        mb.post((0, 1, 2), np.full(2, 7, dtype=np.uint8), consumers=1)
        th.join(timeout=5)
        assert not th.is_alive()
        assert np.all(got[0] == 7)

    def test_failure_releases_blocked_recv(self):
        failure = _ExecutionFailure()
        mb = Mailbox(failure)
        errors = []

        def receiver():
            try:
                mb.recv((9, 9, 9))
            except RuntimeError as e:
                errors.append(e)

        th = threading.Thread(target=receiver)
        th.start()
        failure.set(RuntimeError("rank died"))
        mb.wake()
        th.join(timeout=5)
        assert not th.is_alive()
        assert errors and "rank died" in str(errors[0])

    def test_failure_first_error_wins(self):
        f = _ExecutionFailure()
        f.set(RuntimeError("first"))
        f.set(RuntimeError("second"))
        with pytest.raises(RuntimeError, match="first"):
            f.check()
