"""Seeded-bug executors exercising the happens-before audit.

Both executors below produce *bytewise-correct* outputs — input validation
passes on every task — while violating the scheduling contract in ways only
the schedule audit (:mod:`repro.check.hb_audit`) can see:

* :class:`DroppedEdgeExecutor` silently drops one dependence edge and
  substitutes the deterministic expected bytes for the missing input.  The
  values are "lucky" — identical to what the real producer computed — so
  validation cannot object, but the consumer never synchronized with its
  producer (``hb-missing-acquire``).
* :class:`EarlyPublishExecutor` publishes each task's output *before*
  running its kernel, again using the deterministic expected bytes.
  Consumers validate clean, but the publish precedes the producer's finish
  (``hb-early-publish``): on a concurrent schedule they could observe an
  incomplete buffer.
* :class:`RacyStoreExecutor` runs two real threads over an *unlocked*
  shared dict, consumers spin-polling for their inputs.  The GIL makes
  the bytes come out right and the spin makes every publish precede its
  acquire in the recorded trace, so both validation and the
  happens-before audit pass — only the lockset sanitizer
  (:mod:`repro.check.concurrency`), which trusts nothing but real lock
  hand-offs, sees that the cross-thread reads synchronize on nothing
  (``conc-lockset-race``).

They live in ``tests/`` because no real configuration should ever construct
them; they are audit fixtures, not runtimes.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import validation
from repro.core.executor_base import Executor
from repro.core.task_graph import TaskGraph
from repro.runtimes._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    ScratchPool,
    TaskKey,
    consumer_count,
    record_event,
    task_keys,
)


def pick_victim(graphs: Sequence[TaskGraph]) -> Optional[TaskKey]:
    """The last task (program order) with at least one dependency."""
    victim: Optional[TaskKey] = None
    by_index = {g.graph_index: g for g in graphs}
    for gi, t, i in task_keys(graphs):
        if by_index[gi].num_dependencies(t, i) > 0:
            victim = (gi, t, i)
    return victim


class DroppedEdgeExecutor(Executor):
    """Serial executor that drops one dependence edge of one task.

    For the victim task's first dependency it never reads the producer's
    buffer; it fabricates the bytewise-identical expected output instead, so
    validation passes while the happens-before edge is gone.
    """

    name = "buggy-dropped-edge"
    cores = 1

    def __init__(self) -> None:
        #: The task whose first edge was dropped (set by execute_graphs).
        self.victim: Optional[TaskKey] = None

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        store: Dict[TaskKey, np.ndarray] = {}
        scratch = ScratchPool(graphs)
        self.victim = pick_victim(graphs)
        for gi, t, i in task_keys(graphs):
            g = by_index[gi]
            key = (gi, t, i)
            record_event(EV_START, key)
            inputs: List[np.ndarray] = []
            for n, j in enumerate(g.dependency_points(t, i)):
                source = (gi, t - 1, j)
                if key == self.victim and n == 0:
                    # The bug: no synchronization with the producer, just
                    # the right bytes by construction.
                    inputs.append(validation.task_output(g, t - 1, j))
                    continue
                inputs.append(store[source])
                record_event(EV_ACQUIRE, key, source)
            out = g.execute_point(
                t, i, inputs, scratch=scratch.get(gi, i), validate=validate
            )
            record_event(EV_FINISH, key)
            if consumer_count(g, t, i) > 0:
                store[key] = out
                record_event(EV_PUBLISH, key)


class EarlyPublishExecutor(Executor):
    """Serial executor that publishes outputs before computing them.

    The published buffer holds the deterministic expected bytes, so every
    consumer validates clean — but the publish is ordered before the
    producer's finish, the textbook shape of a buffer-reuse race.
    """

    name = "buggy-early-publish"
    cores = 1

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        store: Dict[TaskKey, np.ndarray] = {}
        scratch = ScratchPool(graphs)
        for gi, t, i in task_keys(graphs):
            g = by_index[gi]
            key = (gi, t, i)
            record_event(EV_START, key)
            inputs: List[np.ndarray] = []
            for j in g.dependency_points(t, i):
                source = (gi, t - 1, j)
                inputs.append(store[source])
                record_event(EV_ACQUIRE, key, source)
            if consumer_count(g, t, i) > 0:
                # The bug: hand consumers the (luckily correct) bytes
                # before the kernel has produced them.
                store[key] = validation.task_output(g, t, i)
                record_event(EV_PUBLISH, key)
            g.execute_point(
                t, i, inputs, scratch=scratch.get(gi, i), validate=validate
            )
            record_event(EV_FINISH, key)


#: Spin-poll interval and give-up deadline of the racy consumer loop.
_SPIN_SECONDS = 0.0002
_SPIN_DEADLINE = 10.0


class RacyStoreExecutor(Executor):
    """Two threads sharing a plain dict with no lock and no condition.

    Columns are partitioned by parity; every cross-parity dependence edge
    is therefore a cross-thread read of the unlocked ``store`` dict, which
    the consumer spin-polls (``while key not in store: sleep``) instead of
    waiting on any synchronization primitive.  Under CPython's GIL the
    dict operations are atomic and the spin guarantees publish-before-read
    in the recorded trace, so outputs validate bytewise and the
    happens-before audit finds nothing — the executor is wrong by
    construction, not by observable effect.  The lockset sanitizer flags
    every cross-thread read: empty candidate lockset, no lock-transfer
    happens-before edge.

    Scratch-free graphs only: the shared :class:`ScratchPool` lock would
    manufacture exactly the lock hand-off edges this fixture must not
    have.
    """

    name = "buggy-racy-store"
    cores = 2

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        for g in graphs:
            if g.scratch_bytes_per_task:
                raise ValueError(
                    "RacyStoreExecutor supports scratch-free graphs only"
                )
        by_index = {g.graph_index: g for g in graphs}
        store: Dict[TaskKey, np.ndarray] = {}
        failures: List[BaseException] = []

        def worker(parity: int) -> None:
            try:
                for gi, t, i in task_keys(graphs):
                    if i % 2 != parity:
                        continue
                    g = by_index[gi]
                    key = (gi, t, i)
                    record_event(EV_START, key)
                    inputs: List[np.ndarray] = []
                    for j in g.dependency_points(t, i):
                        source = (gi, t - 1, j)
                        deadline = time.monotonic() + _SPIN_DEADLINE
                        # The bug: no lock, no condition — just watching
                        # the dict until the other thread's write shows up.
                        while source not in store:
                            if failures or time.monotonic() > deadline:
                                raise RuntimeError(
                                    f"gave up waiting for {source}"
                                )
                            time.sleep(_SPIN_SECONDS)
                        inputs.append(store[source])
                        record_event(EV_ACQUIRE, key, source)
                    out = g.execute_point(t, i, inputs, validate=validate)
                    record_event(EV_FINISH, key)
                    if consumer_count(g, t, i) > 0:
                        # Publish event first, dict write second: a spinning
                        # consumer can only observe the key after the
                        # publish is on the trace, keeping hb_audit clean.
                        record_event(EV_PUBLISH, key)
                        store[key] = out
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)

        threads = [
            threading.Thread(
                target=worker, args=(p,), name=f"racy-store-{p}", daemon=True
            )
            for p in (0, 1)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(timeout=2 * _SPIN_DEADLINE)
        if failures:
            raise failures[0]
        if any(th.is_alive() for th in threads):
            raise RuntimeError("racy-store worker thread wedged")
