"""Seeded-bug executors exercising the happens-before audit.

Both executors below produce *bytewise-correct* outputs — input validation
passes on every task — while violating the scheduling contract in ways only
the schedule audit (:mod:`repro.check.hb_audit`) can see:

* :class:`DroppedEdgeExecutor` silently drops one dependence edge and
  substitutes the deterministic expected bytes for the missing input.  The
  values are "lucky" — identical to what the real producer computed — so
  validation cannot object, but the consumer never synchronized with its
  producer (``hb-missing-acquire``).
* :class:`EarlyPublishExecutor` publishes each task's output *before*
  running its kernel, again using the deterministic expected bytes.
  Consumers validate clean, but the publish precedes the producer's finish
  (``hb-early-publish``): on a concurrent schedule they could observe an
  incomplete buffer.

They live in ``tests/`` because no real configuration should ever construct
them; they are audit fixtures, not runtimes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core import validation
from repro.core.executor_base import Executor
from repro.core.task_graph import TaskGraph
from repro.runtimes._common import (
    EV_ACQUIRE,
    EV_FINISH,
    EV_PUBLISH,
    EV_START,
    ScratchPool,
    TaskKey,
    consumer_count,
    record_event,
    task_keys,
)


def pick_victim(graphs: Sequence[TaskGraph]) -> Optional[TaskKey]:
    """The last task (program order) with at least one dependency."""
    victim: Optional[TaskKey] = None
    by_index = {g.graph_index: g for g in graphs}
    for gi, t, i in task_keys(graphs):
        if by_index[gi].num_dependencies(t, i) > 0:
            victim = (gi, t, i)
    return victim


class DroppedEdgeExecutor(Executor):
    """Serial executor that drops one dependence edge of one task.

    For the victim task's first dependency it never reads the producer's
    buffer; it fabricates the bytewise-identical expected output instead, so
    validation passes while the happens-before edge is gone.
    """

    name = "buggy-dropped-edge"
    cores = 1

    def __init__(self) -> None:
        #: The task whose first edge was dropped (set by execute_graphs).
        self.victim: Optional[TaskKey] = None

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        store: Dict[TaskKey, np.ndarray] = {}
        scratch = ScratchPool(graphs)
        self.victim = pick_victim(graphs)
        for gi, t, i in task_keys(graphs):
            g = by_index[gi]
            key = (gi, t, i)
            record_event(EV_START, key)
            inputs: List[np.ndarray] = []
            for n, j in enumerate(g.dependency_points(t, i)):
                source = (gi, t - 1, j)
                if key == self.victim and n == 0:
                    # The bug: no synchronization with the producer, just
                    # the right bytes by construction.
                    inputs.append(validation.task_output(g, t - 1, j))
                    continue
                inputs.append(store[source])
                record_event(EV_ACQUIRE, key, source)
            out = g.execute_point(
                t, i, inputs, scratch=scratch.get(gi, i), validate=validate
            )
            record_event(EV_FINISH, key)
            if consumer_count(g, t, i) > 0:
                store[key] = out
                record_event(EV_PUBLISH, key)


class EarlyPublishExecutor(Executor):
    """Serial executor that publishes outputs before computing them.

    The published buffer holds the deterministic expected bytes, so every
    consumer validates clean — but the publish is ordered before the
    producer's finish, the textbook shape of a buffer-reuse race.
    """

    name = "buggy-early-publish"
    cores = 1

    def execute_graphs(
        self, graphs: Sequence[TaskGraph], *, validate: bool = True
    ) -> None:
        by_index = {g.graph_index: g for g in graphs}
        store: Dict[TaskKey, np.ndarray] = {}
        scratch = ScratchPool(graphs)
        for gi, t, i in task_keys(graphs):
            g = by_index[gi]
            key = (gi, t, i)
            record_event(EV_START, key)
            inputs: List[np.ndarray] = []
            for j in g.dependency_points(t, i):
                source = (gi, t - 1, j)
                inputs.append(store[source])
                record_event(EV_ACQUIRE, key, source)
            if consumer_count(g, t, i) > 0:
                # The bug: hand consumers the (luckily correct) bytes
                # before the kernel has produced them.
                store[key] = validation.task_output(g, t, i)
                record_event(EV_PUBLISH, key)
            g.execute_point(
                t, i, inputs, scratch=scratch.get(gi, i), validate=validate
            )
            record_event(EV_FINISH, key)
