"""Tests for figure JSON archiving."""

import json

import pytest

from repro.analysis import (
    compare_figures,
    figure_from_dict,
    figure_to_dict,
    load_figure_json,
    save_figure_json,
)
from repro.analysis.figures import FigureData, Series


def fig(**kw):
    base = dict(
        figure_id="figA",
        title="a figure",
        xlabel="x",
        ylabel="y",
        series=[
            Series("s1", [1.0, 2.0], [10.0, 20.0]),
            Series("s2", [1.0, 3.0], [5.0, 7.0]),
        ],
        notes="note",
    )
    base.update(kw)
    return FigureData(**base)


class TestRoundTrip:
    def test_dict_round_trip(self):
        f = fig()
        f2 = figure_from_dict(figure_to_dict(f))
        assert f2 == f

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_json(fig(), path)
        assert load_figure_json(path) == fig()

    def test_json_is_plain(self, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_json(fig(), path)
        data = json.loads(path.read_text())
        assert data["figure_id"] == "figA"
        assert data["series"][0]["label"] == "s1"
        assert data["schema_version"] == 1

    def test_real_figure_round_trips(self):
        from repro.analysis import figure13

        f = figure13()
        assert figure_from_dict(figure_to_dict(f)) == f

    def test_empty_notes_default(self):
        d = figure_to_dict(fig(notes=""))
        del d["notes"]
        assert figure_from_dict(d).notes == ""


class TestValidation:
    def test_wrong_schema_version(self):
        d = figure_to_dict(fig())
        d["schema_version"] = 99
        with pytest.raises(ValueError, match="schema version"):
            figure_from_dict(d)

    def test_missing_fields(self):
        d = figure_to_dict(fig())
        del d["series"]
        with pytest.raises(ValueError, match="missing fields"):
            figure_from_dict(d)


class TestCompare:
    def test_identical_figures_no_diffs(self):
        assert compare_figures(fig(), fig()) == []

    def test_different_ids(self):
        diffs = compare_figures(fig(), fig(figure_id="figB"))
        assert any("figure_id" in d for d in diffs)

    def test_missing_series_reported(self):
        b = fig(series=[Series("s1", [1.0], [10.0])])
        diffs = compare_figures(fig(), b)
        assert any("'s2' only in first" in d for d in diffs)

    def test_value_difference_reported(self):
        b = fig(series=[
            Series("s1", [1.0, 2.0], [10.0, 25.0]),
            Series("s2", [1.0, 3.0], [5.0, 7.0]),
        ])
        diffs = compare_figures(fig(), b)
        assert any("s1 @ x=2" in d for d in diffs)

    def test_tolerance_suppresses_small_diffs(self):
        b = fig(series=[
            Series("s1", [1.0, 2.0], [10.0, 20.4]),
            Series("s2", [1.0, 3.0], [5.0, 7.0]),
        ])
        assert compare_figures(fig(), b, rel=0.05) == []
        assert compare_figures(fig(), b, rel=0.001) != []

    def test_disjoint_x_positions_ignored(self):
        b = fig(series=[
            Series("s1", [9.0], [99.0]),
            Series("s2", [1.0, 3.0], [5.0, 7.0]),
        ])
        diffs = compare_figures(fig(), b)
        assert not any("@ x=9" in d for d in diffs)
