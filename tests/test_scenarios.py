"""Tests for named application scenarios."""

import pytest

from repro.core import DependenceType, KernelType
from repro.core.scenarios import (
    SCENARIOS,
    amr_load_imbalance,
    divide_and_conquer,
    embarrassingly_parallel,
    fft,
    get_scenario,
    halo_exchange,
    multiphysics,
    radiation_sweep,
    unstructured_mesh,
)
from repro.runtimes import make_executor


class TestRegistry:
    def test_all_scenarios_registered(self):
        assert set(SCENARIOS) == {
            "halo_exchange", "radiation_sweep", "fft", "divide_and_conquer",
            "embarrassingly_parallel", "unstructured_mesh", "multiphysics",
            "amr_load_imbalance",
        }

    def test_get_scenario(self):
        s = get_scenario("fft")
        assert s.name == "fft"
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("blockchain")

    def test_scenarios_have_descriptions(self):
        for s in SCENARIOS.values():
            assert s.description

    def test_scenario_callable(self):
        graphs = SCENARIOS["halo_exchange"](width=4, steps=5)
        assert graphs[0].max_width == 4

    def test_default_builds_are_valid(self):
        for name, s in SCENARIOS.items():
            graphs = s()
            assert graphs, name
            assert all(g.total_tasks() > 0 for g in graphs), name
            assert [g.graph_index for g in graphs] == list(range(len(graphs)))


class TestShapes:
    def test_halo_exchange_is_stencil(self):
        (g,) = halo_exchange()
        assert g.dependence is DependenceType.STENCIL_1D

    def test_halo_exchange_periodic(self):
        (g,) = halo_exchange(periodic=True)
        assert g.dependence is DependenceType.STENCIL_1D_PERIODIC

    def test_radiation_sweep_directions(self):
        graphs = radiation_sweep(directions=4)
        assert len(graphs) == 4
        assert all(g.dependence is DependenceType.DOM for g in graphs)

    def test_fft_auto_depth(self):
        (g,) = fft(width=16)
        assert g.timesteps == 5  # log2(16) stages + initial row
        assert g.dependence is DependenceType.FFT

    def test_fft_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            fft(width=1)

    def test_divide_and_conquer_reaches_full_width(self):
        (g,) = divide_and_conquer(width=8)
        assert g.width_at_timestep(g.timesteps - 1) == 8
        assert g.width_at_timestep(0) == 1

    def test_embarrassingly_parallel_no_deps(self):
        (g,) = embarrassingly_parallel(width=8, steps=3)
        assert g.total_dependencies() == 0

    def test_unstructured_mesh_fixed_over_time(self):
        """A mesh does not change between timesteps: the random neighbour
        sets repeat."""
        (g,) = unstructured_mesh(width=16, steps=10)
        for i in range(16):
            assert g.dependencies(2, i) == g.dependencies(7, i)

    def test_unstructured_mesh_deterministic_by_seed(self):
        a = unstructured_mesh(seed=1)[0]
        b = unstructured_mesh(seed=1)[0]
        c = unstructured_mesh(seed=2)[0]
        assert a.dependencies(1, 5) == b.dependencies(1, 5)
        assert any(a.dependencies(1, i) != c.dependencies(1, i) for i in range(32))

    def test_multiphysics_heterogeneous(self):
        graphs = multiphysics()
        assert {g.dependence for g in graphs} == {
            DependenceType.STENCIL_1D, DependenceType.DOM, DependenceType.FFT
        }

    def test_amr_persistent_imbalance(self):
        graphs = amr_load_imbalance()
        assert len(graphs) == 4  # over-decomposed into patches
        g = graphs[0]
        assert g.kernel.kernel_type is KernelType.LOAD_IMBALANCE
        assert g.kernel.persistent is True
        # patches draw distinct refinement (imbalance) patterns
        assert graphs[0].seed != graphs[1].seed

    def test_amr_patches_validation(self):
        with pytest.raises(ValueError, match="patches"):
            amr_load_imbalance(patches=0)


class TestExecution:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_runs_validated(self, name):
        graphs = SCENARIOS[name](width=4, steps=4, iterations=1)
        r = make_executor("threads", workers=2).run(graphs)
        assert r.total_tasks == sum(g.total_tasks() for g in graphs)

    def test_scenarios_simulate(self):
        from repro.sim import ARIES, MachineSpec, get_system, simulate

        machine = MachineSpec(nodes=2, cores_per_node=4)
        for name in sorted(SCENARIOS):
            graphs = SCENARIOS[name](width=8, steps=5, iterations=10)
            r = simulate(graphs, machine, get_system("mpi_p2p"), ARIES)
            assert r.elapsed_seconds > 0, name
