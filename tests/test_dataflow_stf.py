"""Unit tests for the sequential-task-flow scheduler (PaRSEC DTD/StarPU
analogue) and its dependence inference."""

import threading

import pytest

from repro.core import DependenceType, TaskGraph
from repro.runtimes import DataflowExecutor, STFScheduler


def run_inline(sched: STFScheduler, submissions):
    """Submit all tasks, then execute them on one worker thread."""
    order = []
    for key, reads, write in submissions:
        sched.submit(key, reads, write, lambda k=key: order.append(k))
    sched.finish_discovery()
    worker = threading.Thread(target=sched.worker_main)
    worker.start()
    worker.join()
    return order


class TestEdgeInference:
    def test_raw_edge(self):
        """Reader after writer: read-after-write dependence."""
        s = STFScheduler(1)
        run_inline(s, [
            ("w", [], ("d", 0, 0)),
            ("r", [("d", 0, 0)], ("e", 0, 0)),
        ])
        assert s.edge_counts["raw"] == 1

    def test_waw_edge(self):
        s = STFScheduler(1)
        run_inline(s, [
            ("w1", [], ("d", 0, 0)),
            ("w2", [], ("d", 0, 0)),
        ])
        assert s.edge_counts["waw"] == 1

    def test_war_edge(self):
        s = STFScheduler(1)
        run_inline(s, [
            ("w1", [], ("d", 0, 0)),
            ("r", [("d", 0, 0)], ("x", 0, 0)),
            ("w2", [], ("d", 0, 0)),
        ])
        assert s.edge_counts["war"] == 1

    def test_no_edge_between_independent(self):
        s = STFScheduler(1)
        run_inline(s, [
            ("a", [], ("d", 0, 0)),
            ("b", [], ("e", 0, 0)),
        ])
        assert sum(s.edge_counts.values()) == 0

    def test_execution_respects_raw_order(self):
        s = STFScheduler(1)
        order = run_inline(s, [
            ("producer", [], ("d", 0, 0)),
            ("consumer", [("d", 0, 0)], ("e", 0, 0)),
        ])
        assert order.index("producer") < order.index("consumer")

    def test_multiple_readers_one_writer(self):
        s = STFScheduler(1)
        order = run_inline(s, [
            ("w", [], ("d", 0, 0)),
            ("r1", [("d", 0, 0)], ("x", 0, 0)),
            ("r2", [("d", 0, 0)], ("y", 0, 0)),
            ("w2", [], ("d", 0, 0)),
        ])
        assert order.index("w") < order.index("r1")
        assert order.index("w") < order.index("r2")
        assert order.index("w2") > order.index("r1")
        assert order.index("w2") > order.index("r2")
        assert s.edge_counts["war"] == 2


class TestNbFields:
    def test_nb_fields_one_over_serializes(self):
        """With a single field (in-place semantics), within-timestep program
        order creates extra edges: strictly more than the double-buffered
        configuration infers."""
        g = TaskGraph(timesteps=6, max_width=6,
                      dependence=DependenceType.STENCIL_1D)

        def edge_total(nb_fields):
            ex = DataflowExecutor(workers=2, nb_fields=nb_fields)
            # run and capture the scheduler's counts via a small shim
            counts = {}
            orig = STFScheduler.finish_discovery

            def capture(self):
                counts.update(self.edge_counts)
                orig(self)

            STFScheduler.finish_discovery = capture
            try:
                ex.run([g])
            finally:
                STFScheduler.finish_discovery = orig
            return sum(counts.values())

        assert edge_total(1) > edge_total(2)

    def test_nb_fields_validation(self):
        with pytest.raises(ValueError, match="nb_fields"):
            DataflowExecutor(workers=1, nb_fields=0)

    @pytest.mark.parametrize("nb_fields", [1, 2, 3])
    def test_all_field_counts_execute_correctly(self, nb_fields):
        g = TaskGraph(timesteps=6, max_width=5,
                      dependence=DependenceType.STENCIL_1D)
        r = DataflowExecutor(workers=2, nb_fields=nb_fields).run([g])
        assert r.total_tasks == 30


class TestDiscoveryConcurrentWithExecution:
    def test_submit_after_workers_started(self):
        """Discovery and execution overlap: workers may retire tasks while
        later tasks are still being submitted."""
        s = STFScheduler(1)
        done = []
        worker = threading.Thread(target=s.worker_main)
        worker.start()
        for k in range(50):
            reads = [("d", k - 1, 0)] if k else []
            s.submit((0, k, 0), reads, ("d", k, 0), lambda k=k: done.append(k))
        s.finish_discovery()
        worker.join()
        assert done == list(range(50))

    def test_error_propagates_from_worker(self):
        s = STFScheduler(1)

        def boom():
            raise RuntimeError("task exploded")

        s.submit(("t", 0, 0), [], ("d", 0, 0), boom)
        s.finish_discovery()
        worker = threading.Thread(target=s.worker_main)
        worker.start()
        worker.join()
        assert isinstance(s.error, RuntimeError)
