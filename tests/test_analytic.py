"""Tests for the closed-form phased model, cross-validated against the
discrete-event simulator (the source of truth)."""

import pytest

from repro.core import DependenceType
from repro.metg import SimRunner, compute_workload, metg
from repro.sim import ARIES, IDEAL, MachineSpec, get_system
from repro.sim.analytic import (
    PhasedPrediction,
    crosses_nodes,
    interior_comm_counts,
    predict,
    predicted_metg_seconds,
)


class TestInteriorCommCounts:
    def test_trivial_and_no_comm_free(self):
        assert interior_comm_counts(DependenceType.TRIVIAL) == (0, 0)
        assert interior_comm_counts(DependenceType.NO_COMM) == (0, 0)

    def test_stencil(self):
        assert interior_comm_counts(DependenceType.STENCIL_1D) == (2, 2)
        assert interior_comm_counts(DependenceType.STENCIL_1D_PERIODIC) == (2, 2)

    def test_dom(self):
        assert interior_comm_counts(DependenceType.DOM) == (1, 1)

    def test_nearest_excludes_self(self):
        assert interior_comm_counts(DependenceType.NEAREST, radix=5) == (4, 4)
        assert interior_comm_counts(DependenceType.NEAREST, radix=0) == (0, 0)

    def test_unsupported_pattern(self):
        with pytest.raises(ValueError, match="no closed form"):
            interior_comm_counts(DependenceType.FFT)


class TestCrossesNodes:
    def test_single_node_never(self):
        m = MachineSpec(nodes=1, cores_per_node=8)
        assert not crosses_nodes(DependenceType.STENCIL_1D, m)

    def test_multi_node_stencil(self):
        m = MachineSpec(nodes=4, cores_per_node=8)
        assert crosses_nodes(DependenceType.STENCIL_1D, m)

    def test_no_comm_never(self):
        m = MachineSpec(nodes=4, cores_per_node=8)
        assert not crosses_nodes(DependenceType.NO_COMM, m)


class TestPrediction:
    def test_metg_formula(self):
        p = PhasedPrediction(
            overhead_seconds=2e-6, latency_seconds=1e-6,
            controller_floor_seconds=0.0,
        )
        assert p.metg_seconds(0.5) == pytest.approx(6e-6)
        assert p.metg_seconds(0.9) == pytest.approx(30e-6)

    def test_controller_floor_dominates(self):
        p = PhasedPrediction(1e-6, 0.0, controller_floor_seconds=1e-3)
        assert p.metg_seconds(0.5) == pytest.approx(1e-3)

    def test_efficiency_monotone(self):
        p = PhasedPrediction(2e-6, 1e-6, 0.0)
        assert p.efficiency(1e-6) < p.efficiency(1e-5) < p.efficiency(1e-3)
        assert p.efficiency(1.0) > 0.999

    def test_invalid_target(self):
        p = PhasedPrediction(1e-6, 0.0, 0.0)
        with pytest.raises(ValueError):
            p.metg_seconds(1.0)

    def test_reserved_cores_rejected(self):
        m = MachineSpec(nodes=1, cores_per_node=8)
        with pytest.raises(ValueError, match="reserved"):
            predict(get_system("realm"), m, ARIES)

    def test_matches_paper_headline_numbers(self):
        """Closed form lands on the paper's MPI anchors: 4.6 us stencil,
        390 ns trivial."""
        from repro.sim import CORI_HASWELL

        mpi = get_system("mpi_p2p")
        stencil = predicted_metg_seconds(mpi, CORI_HASWELL, ARIES)
        assert 4e-6 < stencil < 6e-6
        trivial = predicted_metg_seconds(
            mpi, CORI_HASWELL, ARIES, dependence=DependenceType.TRIVIAL
        )
        assert 0.3e-6 < trivial < 0.5e-6

    def test_ideal_network_removes_latency(self):
        m = MachineSpec(nodes=16, cores_per_node=4)
        mpi = get_system("mpi_p2p")
        with_net = predict(mpi, m, ARIES)
        without = predict(mpi, m, IDEAL)
        assert without.latency_seconds < 1e-20
        assert with_net.latency_seconds > 0.0


class TestCrossValidation:
    """The DESIGN.md promise: analytic and DES agree on phased regular
    patterns."""

    @pytest.mark.parametrize("nodes,cpn", [(1, 8), (4, 4), (16, 4)])
    @pytest.mark.parametrize(
        "dependence,radix",
        [
            (DependenceType.STENCIL_1D, 3),
            (DependenceType.NEAREST, 5),
            (DependenceType.TRIVIAL, 0),
        ],
    )
    def test_p2p_within_10_percent(self, nodes, cpn, dependence, radix):
        machine = MachineSpec(nodes=nodes, cores_per_node=cpn)
        model = get_system("mpi_p2p")
        runner = SimRunner(model, machine)
        wl = compute_workload(
            runner.worker_width, steps=25, dependence=dependence, radix=radix
        )
        sim = metg(runner, wl).metg_seconds
        ana = predicted_metg_seconds(
            model, machine, ARIES, dependence=dependence, radix=radix
        )
        assert sim == pytest.approx(ana, rel=0.10)

    def test_dom_converges_to_pipelined_rate(self):
        """The sweep's wavefront pays latency only during pipeline fill, so
        the finite-height simulation converges to the latency-free closed
        form from above as the graph gets taller."""
        machine = MachineSpec(nodes=4, cores_per_node=4)
        model = get_system("mpi_p2p")
        ana = predicted_metg_seconds(
            model, machine, ARIES, dependence=DependenceType.DOM, radix=2
        )
        sims = []
        for steps in (25, 400):
            runner = SimRunner(model, machine)
            wl = compute_workload(
                runner.worker_width, steps=steps,
                dependence=DependenceType.DOM, radix=2,
            )
            sims.append(metg(runner, wl).metg_seconds)
        assert sims[0] > sims[1] >= ana * 0.99
        assert sims[1] == pytest.approx(ana, rel=0.10)

    def test_bulk_sync_within_25_percent(self):
        """The barrier overlaps message arrivals in the DES, so the
        closed form (which adds them) is a slight overestimate."""
        machine = MachineSpec(nodes=16, cores_per_node=4)
        model = get_system("mpi_bulk_sync")
        runner = SimRunner(model, machine)
        wl = compute_workload(runner.worker_width, steps=25)
        sim = metg(runner, wl).metg_seconds
        ana = predicted_metg_seconds(model, machine, ARIES)
        assert sim <= ana  # analytic upper-bounds the barrier model
        assert sim == pytest.approx(ana, rel=0.25)

    def test_controller_floor_matches_spark(self):
        """Spark's simulated METG equals the controller floor within the
        transition regime."""
        from repro.sim import CORI_HASWELL

        spark = get_system("spark")
        runner = SimRunner(spark, CORI_HASWELL)
        wl = compute_workload(runner.worker_width, steps=10)
        sim = metg(runner, wl).metg_seconds
        floor = CORI_HASWELL.total_cores / spark.controller_tasks_per_s
        assert sim == pytest.approx(floor, rel=0.3)

    def test_efficiency_curve_matches_simulator(self):
        """Pointwise check, not just the 50% crossing."""
        from repro.metg import measure

        machine = MachineSpec(nodes=4, cores_per_node=4)
        model = get_system("mpi_p2p")
        runner = SimRunner(model, machine)
        wl = compute_workload(runner.worker_width, steps=25)
        pred = predict(model, machine, ARIES)
        ktime = machine.kernel_time_model()
        from repro.core import Kernel, KernelType

        for iters in (100, 1000, 10000, 100000):
            sim_eff = measure(runner, wl, iters).efficiency
            k = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=iters)
            ana_eff = pred.efficiency(ktime.task_seconds(k))
            assert sim_eff == pytest.approx(ana_eff, rel=0.15), iters
