"""Hypothesis property tests on the simulator engines.

Invariants that must hold for *any* graph/machine/model combination:
lower bounds from work conservation, upper bounds from serialization,
monotonicity in overheads, and agreement between the engines where their
semantics coincide.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.sim import IDEAL, MachineSpec, RuntimeModel, simulate, simulate_with_stats

machines = st.builds(
    MachineSpec,
    nodes=st.integers(min_value=1, max_value=4),
    cores_per_node=st.integers(min_value=1, max_value=6),
)

graphs = st.builds(
    TaskGraph,
    timesteps=st.integers(min_value=1, max_value=8),
    max_width=st.integers(min_value=1, max_value=10),
    dependence=st.sampled_from(
        [
            DependenceType.TRIVIAL,
            DependenceType.NO_COMM,
            DependenceType.STENCIL_1D,
            DependenceType.NEAREST,
            DependenceType.FFT,
            DependenceType.TREE,
        ]
    ),
    radix=st.integers(min_value=0, max_value=4),
    kernel=st.builds(
        Kernel,
        kernel_type=st.just(KernelType.COMPUTE_BOUND),
        iterations=st.integers(min_value=0, max_value=5000),
    ),
    output_bytes_per_task=st.sampled_from([0, 16, 1024]),
)

executions = st.sampled_from(["phased", "async"])

overheads = st.floats(min_value=0.0, max_value=1e-4, allow_nan=False)


def model(execution, task_oh=0.0, dep_oh=0.0):
    return RuntimeModel(
        name="prop",
        execution=execution,
        task_overhead_s=task_oh,
        dep_overhead_s=dep_oh,
        send_overhead_s=0.0,
    )


@settings(max_examples=40, deadline=None)
@given(graphs, machines, executions, overheads)
def test_elapsed_bounded_by_work(g, machine, execution, task_oh):
    """Work conservation: serial-total/cores <= elapsed <= serial-total +
    per-task costs (on an ideal network)."""
    m = model(execution, task_oh=task_oh)
    result, stats = simulate_with_stats([g], machine, m, IDEAL)
    total_work = sum(stats.core_busy_seconds)
    workers = len(stats.core_busy_seconds)
    assert result.elapsed_seconds >= total_work / workers - 1e-12
    assert result.elapsed_seconds <= total_work + 1e-12 or total_work == 0


@settings(max_examples=40, deadline=None)
@given(graphs, machines, executions)
def test_busy_time_equals_modeled_cost(g, machine, execution):
    """Every task's kernel time is accounted exactly once."""
    m = model(execution)
    _, stats = simulate_with_stats([g], machine, m, IDEAL)
    ktime = machine.kernel_time_model(machine.cores_per_node)
    expected = sum(
        ktime.task_seconds(g.kernel, t, i, g.seed) for t, i in g.points()
    )
    assert sum(stats.core_busy_seconds) == pytest.approx(expected, rel=1e-9, abs=1e-15)


@settings(max_examples=30, deadline=None)
@given(graphs, machines, executions, overheads)
def test_monotone_in_task_overhead(g, machine, execution, task_oh):
    fast = simulate([g], machine, model(execution), IDEAL)
    slow = simulate([g], machine, model(execution, task_oh=task_oh), IDEAL)
    assert slow.elapsed_seconds >= fast.elapsed_seconds - 1e-15


@settings(max_examples=30, deadline=None)
@given(graphs, machines)
def test_engines_agree_on_dependency_free_graphs(g, machine):
    """With no cross-task constraints and no overheads, both engines reduce
    to balanced work division."""
    g = g.with_(dependence=DependenceType.NO_COMM)
    phased = simulate([g], machine, model("phased"), IDEAL)
    asynch = simulate([g], machine, model("async"), IDEAL)
    assert phased.elapsed_seconds == pytest.approx(
        asynch.elapsed_seconds, rel=1e-9, abs=1e-15
    )


@settings(max_examples=30, deadline=None)
@given(graphs, machines, executions)
def test_task_counts_complete(g, machine, execution):
    _, stats = simulate_with_stats([g], machine, model(execution), IDEAL)
    assert sum(stats.tasks_per_core) == g.total_tasks()


@settings(max_examples=30, deadline=None)
@given(graphs, machines, executions)
def test_deterministic(g, machine, execution):
    a = simulate([g], machine, model(execution), IDEAL)
    b = simulate([g], machine, model(execution), IDEAL)
    assert a.elapsed_seconds == b.elapsed_seconds
