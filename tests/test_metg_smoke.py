"""METG smoke regression: the zero-copy data plane must not regress METG.

The acceptance guard for :mod:`repro.runtimes.shm`: on a small fixed
scenario, ``shm_processes`` METG must stay within 2x of ``processes`` METG
(the tolerance absorbs host noise; the benchmark in
``benchmarks/bench_shm_dataplane.py`` measures the actual win).  The A/B
numbers are recorded next to the benchmark's results in
``benchmarks/results/shm_dataplane.json`` so CI archives both together.

Single worker on purpose: CI containers expose one core, and a two-worker
process pool cannot reach 50% efficiency against a one-core calibrated
peak.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.metg import RealRunner, compute_workload, metg
from repro.runtimes import make_executor

pytestmark = pytest.mark.slow

RESULTS_PATH = (
    Path(__file__).resolve().parents[1] / "benchmarks" / "results" / "shm_dataplane.json"
)

#: Small fixed scenario: payload large enough that the data plane matters.
WIDTH = 4
STEPS = 10
OUTPUT_BYTES = 4096
SEED = 123
#: Noise tolerance of the A/B assertion (satellite spec: 2x).
MAX_RATIO = 2.0


def _metg_seconds(runtime: str) -> float:
    """Best-of-2 METG(50%) for one backend (min damps host noise; the
    worker pool persists across both searches, as METG sweeps rely on)."""
    ex = make_executor(runtime, workers=1)
    try:
        runner = RealRunner(ex)
        factory = compute_workload(
            WIDTH, STEPS, output_bytes=OUTPUT_BYTES, seed=SEED
        )
        return min(
            metg(
                runner,
                factory,
                max_iterations=1 << 24,
                tolerance=0.25,
            ).metg_seconds
            for _ in range(2)
        )
    finally:
        ex.close()


def _record(base: float, shm: float, ratio: float) -> None:
    data = {}
    if RESULTS_PATH.exists():
        data = json.loads(RESULTS_PATH.read_text())
    data["metg_smoke"] = {
        "scenario": {
            "dependence": "stencil_1d",
            "max_width": WIDTH,
            "timesteps": STEPS,
            "output_bytes_per_task": OUTPUT_BYTES,
            "seed": SEED,
            "workers": 1,
        },
        "processes_metg_seconds": base,
        "shm_processes_metg_seconds": shm,
        "shm_over_processes_ratio": ratio,
        "max_allowed_ratio": MAX_RATIO,
    }
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_shm_metg_within_tolerance_of_processes():
    base = _metg_seconds("processes")
    shm = _metg_seconds("shm_processes")
    ratio = shm / base
    _record(base, shm, ratio)
    assert ratio <= MAX_RATIO, (
        f"shm_processes METG {shm * 1e6:.0f}us is {ratio:.2f}x processes "
        f"METG {base * 1e6:.0f}us (limit {MAX_RATIO}x) — the zero-copy "
        "data plane regressed"
    )
