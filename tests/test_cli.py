"""Tests for the command-line interface."""

import pytest

from repro.cli import main, run_config
from repro.core import parse_args


class TestMain:
    def test_real_runtime_run(self, capsys):
        rc = main(["-steps", "5", "-width", "3", "-type", "stencil_1d",
                   "-kernel", "compute_bound", "-iter", "4",
                   "-runtime", "serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Total Tasks 15" in out
        assert "FLOP/s" in out

    def test_simulated_runtime_run(self, capsys):
        rc = main(["-steps", "10", "-width", "64", "-type", "stencil_1d",
                   "-kernel", "compute_bound", "-iter", "100",
                   "-runtime", "sim:mpi_p2p", "-nodes", "2", "-cores", "32"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Executor: mpi_p2p" in out
        assert "Total Tasks 640" in out

    def test_multiple_graphs(self, capsys):
        rc = main(["-steps", "4", "-width", "2", "-and", "-type", "fft",
                   "-runtime", "serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Total Tasks 16" in out

    def test_verbose_prints_graphs(self, capsys):
        rc = main(["-steps", "3", "-width", "2", "-verbose",
                   "-runtime", "serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "graph 0" in out

    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "-runtime" in out and "sim:" in out

    def test_unknown_flag_is_error(self, capsys):
        assert main(["-frobnicate"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_runtime_is_error(self, capsys):
        assert main(["-runtime", "gravity"]) == 2
        assert "unknown runtime" in capsys.readouterr().err

    def test_unknown_sim_system_is_error(self, capsys):
        assert main(["-runtime", "sim:hadoop"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_bad_graph_parameters_are_errors(self, capsys):
        assert main(["-steps", "0"]) == 2
        assert main(["-width", "x"]) == 2

    def test_no_validate_flag(self, capsys):
        rc = main(["-steps", "3", "-width", "2", "-runtime", "serial",
                   "-no-validate"])
        assert rc == 0

    def test_report_flag_prints_data_plane(self, capsys):
        rc = main(["-steps", "3", "-width", "2", "-type", "stencil_1d",
                   "-output", "256", "-runtime", "threads", "--report"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Bytes Shared" in out
        assert "Pool Hit Rate" in out

    def test_report_flag_on_uninstrumented_executor(self, capsys):
        rc = main(["-steps", "3", "-width", "2", "-runtime", "serial",
                   "--report"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Data Plane (not instrumented)" in out

    def test_report_without_flag_omits_data_plane(self, capsys):
        rc = main(["-steps", "3", "-width", "2", "-type", "stencil_1d",
                   "-output", "256", "-runtime", "threads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Bytes Shared" not in out

    def test_report_with_metg_prints_retry_counter(self, capsys):
        """--report on a -metg sweep appends the fault/retry visibility
        line (retries are a measurement caveat even when the sweep
        eventually succeeded)."""
        rc = main(["-steps", "20", "-width", "128", "-type", "stencil_1d",
                   "-kernel", "compute_bound", "-runtime", "sim:mpi_p2p",
                   "-nodes", "4", "-metg", "--report"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "METG(50%)" in out
        assert "Probe Retries 0" in out


class TestMETGMode:
    def test_simulated_metg_sweep(self, capsys):
        rc = main(["-steps", "20", "-width", "128", "-type", "stencil_1d",
                   "-kernel", "compute_bound", "-runtime", "sim:mpi_p2p",
                   "-nodes", "4", "-metg"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "METG(50%)" in out
        assert "Probes" in out

    def test_metg_with_explicit_target(self, capsys):
        rc = main(["-steps", "15", "-width", "128", "-kernel", "compute_bound",
                   "-type", "stencil_1d", "-runtime", "sim:mpi_p2p",
                   "-nodes", "4", "-metg", "0.9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "METG(90%)" in out

    def test_metg_target_followed_by_flag(self, capsys):
        """-metg directly followed by another flag keeps the 0.5 default."""
        rc = main(["-steps", "15", "-width", "128", "-kernel", "compute_bound",
                   "-type", "stencil_1d", "-metg", "-runtime", "sim:mpi_p2p"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "METG(50%)" in out

    def test_metg_invalid_target(self, capsys):
        rc = main(["-metg", "1.5", "-runtime", "sim:mpi_p2p"])
        assert rc == 2
        assert "target" in capsys.readouterr().err

    def test_metg_90_requires_larger_granularity(self, capsys):
        args = ["-steps", "15", "-width", "128", "-kernel", "compute_bound",
                "-type", "stencil_1d", "-runtime", "sim:mpi_p2p", "-nodes", "4"]
        main(args + ["-metg", "0.5"])
        out50 = capsys.readouterr().out
        main(args + ["-metg", "0.9"])
        out90 = capsys.readouterr().out
        v50 = float(out50.splitlines()[0].split()[1])
        v90 = float(out90.splitlines()[0].split()[1])
        assert v90 > v50


class TestScenarioFlag:
    def test_scenario_on_real_runtime(self, capsys):
        rc = main(["-scenario", "halo_exchange", "-width", "4", "-steps", "6",
                   "-iter", "2", "-runtime", "serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Total Tasks 24" in out

    def test_scenario_multi_graph(self, capsys):
        rc = main(["-scenario", "multiphysics", "-width", "4", "-steps", "4",
                   "-iter", "1", "-runtime", "threads", "-workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Total Tasks 48" in out  # 3 graphs x 4 x 4

    def test_scenario_on_simulator(self, capsys):
        rc = main(["-scenario", "radiation_sweep", "-width", "64",
                   "-steps", "10", "-iter", "50",
                   "-runtime", "sim:mpi_p2p", "-nodes", "2"])
        assert rc == 0
        assert "Executor: mpi_p2p" in capsys.readouterr().out

    def test_unknown_scenario(self, capsys):
        rc = main(["-scenario", "quantum_chess"])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_scenario_missing_value(self, capsys):
        rc = main(["-scenario"])
        assert rc == 2
        assert "missing" in capsys.readouterr().err

    def test_scenario_with_metg(self, capsys):
        rc = main(["-scenario", "halo_exchange", "-width", "128",
                   "-steps", "10", "-runtime", "sim:mpi_p2p", "-nodes", "4",
                   "-metg"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "METG(50%)" in out


class TestCheckSubcommand:
    """Exit-code contract: 0 clean, 1 findings, 2 usage error."""

    def test_check_self_clean(self, capsys):
        assert main(["check", "--self"]) == 0
        assert "check: 0 finding(s)" in capsys.readouterr().out

    def test_check_real_runtime_clean(self, capsys):
        rc = main(["check", "-steps", "5", "-width", "3",
                   "-type", "stencil_1d", "-runtime", "serial"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "graph-critical-path" in out  # advisory bound always printed
        assert "hb-trace" in out  # the audited run happened

    def test_check_sim_runtime_skips_audit(self, capsys):
        rc = main(["check", "-steps", "5", "-width", "3",
                   "-runtime", "sim:mpi_p2p"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "hb-trace" not in out

    def test_check_findings_exit_1(self, capsys):
        rc = main(["check", "-steps", "5", "-width", "3",
                   "-kernel", "compute_bound", "-iter", "65536",
                   "-runtime", "serial", "-budget", "1e-30"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "graph-infeasible" in out
        assert "check: 1 finding(s)" in out

    def test_check_self_rejects_extra_args(self, capsys):
        assert main(["check", "--self", "-steps", "5"]) == 2
        assert "no further arguments" in capsys.readouterr().err

    def test_check_budget_missing_value(self, capsys):
        assert main(["check", "-budget"]) == 2
        assert "missing" in capsys.readouterr().err

    def test_check_budget_not_a_number(self, capsys):
        assert main(["check", "-budget", "soon"]) == 2
        assert "number" in capsys.readouterr().err

    def test_check_bad_graph_flags(self, capsys):
        assert main(["check", "-frobnicate"]) == 2


class TestAuditFlag:
    def test_audit_clean_run(self, capsys):
        rc = main(["-steps", "5", "-width", "3", "-type", "stencil_1d",
                   "-runtime", "threads", "-workers", "2", "--audit"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Audit clean" in out
        assert "Total Tasks 15" in out  # the normal report still prints

    def test_audit_with_metg_is_error(self, capsys):
        rc = main(["-steps", "5", "-width", "3", "-runtime", "threads",
                   "-metg", "--audit"])
        assert rc == 2
        assert "--audit requires" in capsys.readouterr().err

    def test_audit_with_simulator_is_error(self, capsys):
        rc = main(["-steps", "5", "-width", "3", "-runtime", "sim:mpi_p2p",
                   "--audit"])
        assert rc == 2
        assert "--audit requires" in capsys.readouterr().err


class TestRunConfig:
    def test_sim_default_cores(self):
        app = parse_args(["-steps", "5", "-width", "32",
                          "-runtime", "sim:mpi_p2p"])
        r = run_config(app)
        assert r.cores == 32  # one node x default 32 cores

    def test_workers_forwarded(self):
        app = parse_args(["-steps", "5", "-width", "4",
                          "-runtime", "bulk_sync", "-workers", "3"])
        r = run_config(app)
        assert r.cores == 3

    def test_single_node_system_error_propagates(self):
        app = parse_args(["-steps", "3", "-width", "8",
                          "-runtime", "sim:openmp_task", "-nodes", "4"])
        with pytest.raises(ValueError, match="single-node"):
            run_config(app)
