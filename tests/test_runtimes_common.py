"""Unit tests for shared runtime machinery (OutputStore, ScratchPool, ...)."""

import numpy as np
import pytest

from repro.core import DependenceType, TaskGraph
from repro.runtimes._common import (
    OutputStore,
    ScratchPool,
    consumer_count,
    run_point,
    task_keys,
)


def graphs2():
    return [
        TaskGraph(timesteps=4, max_width=3,
                  dependence=DependenceType.STENCIL_1D, graph_index=0),
        TaskGraph(timesteps=2, max_width=2,
                  dependence=DependenceType.TRIVIAL, graph_index=1),
    ]


class TestTaskKeys:
    def test_covers_all_tasks(self):
        gs = graphs2()
        keys = list(task_keys(gs))
        assert len(keys) == sum(g.total_tasks() for g in gs)
        assert len(set(keys)) == len(keys)

    def test_timestep_major_order(self):
        keys = list(task_keys(graphs2()))
        ts = [t for _, t, _ in keys]
        assert ts == sorted(ts)

    def test_interleaves_graphs_within_timestep(self):
        keys = list(task_keys(graphs2()))
        t0 = [(gi, i) for gi, t, i in keys if t == 0]
        assert t0 == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]

    def test_shorter_graph_ends_early(self):
        keys = list(task_keys(graphs2()))
        assert all(gi == 0 for gi, t, _ in keys if t >= 2)

    def test_tree_skips_inactive_points(self):
        g = TaskGraph(timesteps=3, max_width=4, dependence=DependenceType.TREE)
        keys = list(task_keys([g]))
        assert (0, 0, 0) in keys and (0, 0, 1) not in keys


class TestConsumerCount:
    def test_stencil_interior(self):
        g = graphs2()[0]
        assert consumer_count(g, 1, 1) == 3

    def test_last_timestep_zero(self):
        g = graphs2()[0]
        assert consumer_count(g, 3, 1) == 0

    def test_trivial_zero(self):
        g = graphs2()[1]
        assert consumer_count(g, 0, 0) == 0


class TestOutputStore:
    def test_put_take_roundtrip(self):
        s = OutputStore()
        buf = np.arange(4, dtype=np.uint8)
        s.put((0, 0, 0), buf, consumers=2)
        assert np.array_equal(s.take((0, 0, 0)), buf)
        assert len(s) == 1  # one consumer left
        s.take((0, 0, 0))
        assert len(s) == 0

    def test_zero_consumers_not_stored(self):
        s = OutputStore()
        s.put((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=0)
        assert len(s) == 0

    def test_double_put_rejected(self):
        s = OutputStore()
        s.put((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=1)
        with pytest.raises(RuntimeError, match="twice"):
            s.put((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=1)

    def test_take_missing_rejected(self):
        s = OutputStore()
        with pytest.raises(RuntimeError, match="not produced"):
            s.take((0, 9, 9))

    def test_over_take_rejected(self):
        s = OutputStore()
        s.put((0, 0, 0), np.zeros(1, dtype=np.uint8), consumers=1)
        s.take((0, 0, 0))
        with pytest.raises(RuntimeError):
            s.take((0, 0, 0))

    def test_assert_drained_passes_when_empty(self):
        OutputStore().assert_drained()

    def test_assert_drained_detects_leak(self):
        s = OutputStore()
        s.put((0, 1, 2), np.zeros(1, dtype=np.uint8), consumers=1)
        with pytest.raises(RuntimeError, match="never consumed"):
            s.assert_drained()

    def test_gather_canonical_order(self):
        g = graphs2()[0]
        s = OutputStore()
        from repro.core.validation import task_output

        for i in range(3):
            s.put((0, 0, i), task_output(g, 0, i), consumers=consumer_count(g, 0, i))
        inputs = s.gather(g, 1, 1)
        assert len(inputs) == 3
        # canonical order means validation passes
        g.execute_point(1, 1, inputs)

    def test_gather_t0_empty(self):
        g = graphs2()[0]
        assert OutputStore().gather(g, 0, 1) == []


class TestScratchPool:
    def test_no_scratch_returns_none(self):
        g = graphs2()[0]
        pool = ScratchPool([g])
        assert pool.get(0, 0) is None

    def test_allocates_per_column(self):
        g = graphs2()[0].with_(scratch_bytes_per_task=32)
        pool = ScratchPool([g])
        a, b = pool.get(0, 0), pool.get(0, 1)
        assert a is not b
        assert a.nbytes == 32

    def test_reuses_buffer_across_calls(self):
        g = graphs2()[0].with_(scratch_bytes_per_task=32)
        pool = ScratchPool([g])
        assert pool.get(0, 0) is pool.get(0, 0)


class TestRunPoint:
    def test_executes_and_publishes(self):
        g = graphs2()[0]
        s = OutputStore()
        pool = ScratchPool([g])
        for i in range(3):
            run_point(s, pool, g, 0, i, validate=True)
        run_point(s, pool, g, 1, 1, validate=True)
        # (1,1) consumed one ref from each t=0 output but all three still
        # have other consumers pending, plus (1,1)'s own output: 4 entries.
        assert len(s) == 4
