"""Tests for repro.suite: spec expansion, the checkpoint store, the
resource-aware scheduler, and the ``task-bench suite`` command line.

The kill-resume test at the bottom exercises the crash-recovery
guarantee end to end: a suite killed with SIGKILL mid-run leaves only
whole records behind, and ``--resume`` completes exactly the remainder
without touching the bytes of what was already recorded.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.kernels import FLOPS_PER_ITERATION
from repro.metg.runners import PEAK_FLOPS_ENV, peak_flops_per_core
from repro.suite import (
    Cell,
    SpecError,
    StoreError,
    SuiteSpec,
    SuiteStore,
    aggregate_rows,
    load_rows,
    load_spec,
    render_csv,
    render_table,
    run_cell,
    run_suite,
    spec_from_mapping,
)
from repro.suite.scheduler import (
    _Job,
    admissible,
    cell_cost,
    cell_isolation,
    claim_for_cell,
)
from repro.suite.store import TERMINAL_STATUSES


def make_cell(runtime="serial", pattern="trivial", width=2, steps=3,
              payload_bytes=0, metric="run", **kw) -> Cell:
    return Cell(runtime=runtime, pattern=pattern, width=width, steps=steps,
                payload_bytes=payload_bytes, metric=metric, **kw)


def small_spec(**overrides) -> SuiteSpec:
    base = dict(
        name="smoke",
        runtimes=("serial", "sim:dask"),
        patterns=("trivial", "stencil_1d"),
        widths=(2,),
        steps=(3,),
        payload_bytes=(0,),
        metrics=("run",),
        iterations=4,
    )
    base.update(overrides)
    return SuiteSpec(**base)


# ---------------------------------------------------------------------------
# Spec
# ---------------------------------------------------------------------------
class TestSuiteSpec:
    def test_cells_cross_product_sorted_by_key(self):
        spec = small_spec()
        cells = spec.cells()
        assert len(cells) == 4
        keys = [c.key for c in cells]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_cells_carry_shared_configuration(self):
        spec = small_spec(workers=3, kernel="empty", target=0.7)
        for cell in spec.cells():
            assert cell.workers == 3
            assert cell.kernel == "empty"
            assert cell.target == 0.7

    def test_cell_key_is_filesystem_safe(self):
        cell = make_cell(runtime="sim:mpi_p2p")
        assert ":" not in cell.key
        assert cell.key == "run-sim.mpi_p2p-trivial-w2-s3-p0"

    def test_exclusion_rule_cuts_matching_cells(self):
        spec = small_spec(
            exclude=({"runtime": "sim:dask", "pattern": "stencil_1d"},)
        )
        cells = spec.cells()
        assert len(cells) == 3
        assert not any(
            c.runtime == "sim:dask" and c.pattern == "stencil_1d"
            for c in cells
        )

    def test_exclusion_rule_accepts_value_lists(self):
        spec = small_spec(
            exclude=({"runtime": ["sim:dask"], "pattern": ["trivial", "stencil_1d"]},)
        )
        assert all(c.runtime == "serial" for c in spec.cells())

    def test_excluding_every_cell_is_an_error(self):
        spec = small_spec(exclude=({"metric": "run"},))
        with pytest.raises(SpecError, match="removed every cell"):
            spec.cells()

    def test_duplicate_runtimes_rejected(self):
        spec = small_spec(runtimes=("serial", "serial"))
        with pytest.raises(SpecError, match="duplicate cells"):
            spec.cells()

    @pytest.mark.parametrize("overrides,message", [
        (dict(runtimes=("warp_drive",)), "unknown runtime"),
        (dict(runtimes=("sim:warp_drive",)), "unknown simulated system"),
        (dict(patterns=("zigzag",)), "zigzag"),
        (dict(metrics=("speedup",)), "unknown metric"),
        (dict(kernel="quantum"), "quantum"),
        (dict(widths=()), "must not be empty"),
        (dict(widths=(0,)), "must be >= 1"),
        (dict(widths=(True,)), "non-negative integers"),
        (dict(payload_bytes=(-1,)), "non-negative integers"),
        (dict(workers=0), "workers must be >= 1"),
        (dict(target=1.5), "target must be in"),
        (dict(target=0.0), "target must be in"),
        (dict(timeout=0.0), "timeout must be > 0"),
        (dict(cell_timeout=-1.0), "cell_timeout must be > 0"),
        (dict(name="a/b"), "non-empty slug"),
        (dict(name=""), "non-empty slug"),
        (dict(exclude=({},)), "must constrain an axis"),
        (dict(exclude=({"colour": "red"},)), "axis 'colour' unknown"),
    ])
    def test_validation(self, overrides, message):
        with pytest.raises(SpecError, match=message):
            small_spec(**overrides)

    def test_fingerprint_stable_and_shape_sensitive(self):
        assert small_spec().fingerprint() == small_spec().fingerprint()
        assert small_spec().fingerprint() != small_spec(widths=(4,)).fingerprint()

    def test_graphs_memoized_but_fresh_identity(self):
        cell = make_cell()
        (g1,), (g2,) = cell.graphs_at(8), cell.graphs_at(8)
        # Distinct objects (worker caches key on identity) ...
        assert g1 is not g2
        # ... sharing the one expensive dependence relation.
        assert g1.spec is g2.spec
        (g3,) = cell.graphs_at(16)
        assert g3.kernel.iterations == 16


class TestSpecLoading:
    def test_scalars_promoted_to_axes(self):
        spec = spec_from_mapping({
            "name": "s", "runtimes": "serial", "patterns": "trivial",
            "widths": 2, "metrics": "metg",
        })
        assert spec.runtimes == ("serial",)
        assert spec.widths == (2,)
        assert spec.metrics == ("metg",)

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown spec key 'runtimez'"):
            spec_from_mapping({
                "name": "s", "runtimez": ["serial"], "patterns": ["trivial"],
            })

    def test_schema_version_checked(self):
        with pytest.raises(SpecError, match="schema_version"):
            spec_from_mapping({
                "name": "s", "runtimes": ["serial"], "patterns": ["trivial"],
                "schema_version": 99,
            })
        spec = spec_from_mapping({
            "name": "s", "runtimes": ["serial"], "patterns": ["trivial"],
            "schema_version": 1,
        })
        assert spec.name == "s"

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError, match="must be a mapping"):
            spec_from_mapping(["serial"])

    def test_round_trip_through_canonical_mapping(self):
        spec = small_spec(exclude=({"pattern": "stencil_1d", "runtime": "sim:dask"},))
        again = spec_from_mapping(spec.to_mapping())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_load_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps({
            "runtimes": ["serial"], "patterns": ["trivial"], "widths": [2, 4],
        }))
        spec = load_spec(path)
        assert spec.name == "sweep"  # defaults to the file stem
        assert spec.widths == (2, 4)

    def test_load_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "sweep.toml"
        path.write_text(
            'runtimes = ["serial", "sim:dask"]\n'
            'patterns = ["trivial"]\n'
            'metrics = ["metg"]\n'
            'target = 0.5\n'
            '[[exclude]]\n'
            'runtime = "sim:dask"\n'
        )
        spec = load_spec(path)
        assert spec.metrics == ("metg",)
        assert [c.runtime for c in spec.cells()] == ["serial"]

    def test_load_errors(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec"):
            load_spec(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SpecError, match="bad.json"):
            load_spec(bad)
        other = tmp_path / "spec.yaml"
        other.write_text("runtimes: [serial]")
        with pytest.raises(SpecError, match=".json or .toml"):
            load_spec(other)


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------
def fake_record(key, status="ok", **measurements):
    runtime, pattern = "serial", "trivial"
    return {
        "key": key,
        "cell": {"metric": "run", "runtime": runtime, "pattern": pattern,
                 "width": 2, "steps": 3, "payload_bytes": 0},
        "status": status,
        "wall_seconds": 0.25,
        "measurements": measurements,
    }


class TestSuiteStore:
    def test_ensure_idempotent_and_spec_bound(self, tmp_path):
        store = SuiteStore(tmp_path / "st")
        store.ensure(small_spec())
        store.ensure(small_spec())  # same fingerprint: fine
        with pytest.raises(StoreError, match="refusing"):
            store.ensure(small_spec(widths=(8,)))

    def test_write_read_round_trip(self, tmp_path):
        store = SuiteStore(tmp_path)
        record = fake_record("run-serial-trivial-w2-s3-p0", efficiency=0.9)
        path = store.write(record)
        assert path.name == "run-serial-trivial-w2-s3-p0.json"
        back = store.read("run-serial-trivial-w2-s3-p0")
        assert back["status"] == "ok"
        assert back["measurements"]["efficiency"] == 0.9
        assert back["schema_version"] == 1
        # Atomic write leaves no temp files behind.
        assert list(store.cells_dir.glob("*.tmp")) == []

    def test_record_without_key_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="no cell key"):
            SuiteStore(tmp_path).write({"status": "ok"})

    def test_unreadable_records_skipped(self, tmp_path):
        store = SuiteStore(tmp_path)
        store.write(fake_record("a"))
        store.cells_dir.joinpath("broken.json").write_text("{truncated")
        assert store.read("broken") is None
        assert store.read("absent") is None
        assert [r["key"] for r in store.records()] == ["a"]

    def test_completed_only_terminal_statuses(self, tmp_path):
        store = SuiteStore(tmp_path)
        store.write(fake_record("a", status="ok"))
        store.write(fake_record("b", status="unachievable"))
        store.write(fake_record("c", status="failed"))
        assert store.completed() == {"a", "b"}
        assert set(TERMINAL_STATUSES) == {"ok", "unachievable"}


class TestAggregation:
    def records(self):
        return [
            fake_record("b-key", metg_seconds=1.5e-3, efficiency=0.51,
                        probes=7),
            fake_record("a-key", status="failed"),
            fake_record("c-key", granularity_seconds=2e-4, efficiency=0.9,
                        flops_per_second=1e8, probes=1),
        ]

    def test_rows_sorted_with_fixed_columns(self):
        rows = aggregate_rows(self.records())
        assert [r["key"] for r in rows] == ["a-key", "b-key", "c-key"]
        assert rows[0]["status"] == "failed"
        assert rows[0]["metg_seconds"] is None  # missing measurement
        assert rows[1]["metg_seconds"] == 1.5e-3
        assert rows[2]["probes"] == 1

    def test_same_records_render_byte_identical(self):
        rows1 = aggregate_rows(self.records())
        rows2 = aggregate_rows(list(reversed(self.records())))
        assert render_csv(rows1) == render_csv(rows2)
        assert render_table(rows1) == render_table(rows2)

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "agg.csv"
        path.write_text(render_csv(aggregate_rows(self.records())))
        rows = load_rows(path)
        assert len(rows) == 3
        by_key = {r["key"]: r for r in rows}
        assert by_key["a-key"]["metg_seconds"] is None
        assert by_key["b-key"]["metg_seconds"] == pytest.approx(1.5e-3)
        assert by_key["b-key"]["probes"] == 7
        assert isinstance(by_key["c-key"]["width"], int)

    def test_table_has_header_and_one_line_per_record(self):
        table = render_table(aggregate_rows(self.records()))
        lines = table.splitlines()
        assert lines[0].startswith("metric")
        assert "metg_seconds" in lines[0]
        assert len(lines) == 4

    def test_suite_series_groups_and_skips_missing(self):
        from repro.analysis import suite_series

        rows = [
            {"runtime": "serial", "width": 4, "metg_seconds": 2.0},
            {"runtime": "serial", "width": 2, "metg_seconds": 1.0},
            {"runtime": "sim:dask", "width": 2, "metg_seconds": 3.0},
            {"runtime": "serial", "width": 8, "metg_seconds": None},  # failed
        ]
        fig = suite_series(rows, figure_id="f", title="t")
        by_label = {s.label: s for s in fig.series}
        assert set(by_label) == {"serial", "sim:dask"}
        assert by_label["serial"].x == [2.0, 4.0]  # sorted on x
        assert by_label["serial"].y == [1.0, 2.0]
        assert by_label["sim:dask"].y == [3.0]


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------
def running_job(cell: Cell) -> _Job:
    return _Job(cell=cell, proc=None, claim=claim_for_cell(cell), started=0.0)


class TestAdmission:
    def test_job_cap(self):
        running = [running_job(make_cell())]
        assert not admissible(make_cell(), running, jobs=1, core_budget=64)
        assert admissible(make_cell(), running, jobs=2, core_budget=64)

    def test_idle_scheduler_admits_anything(self):
        big = make_cell(runtime="processes", workers=64)
        assert admissible(big, [], jobs=1, core_budget=1)

    def test_core_budget(self):
        running = [running_job(make_cell(runtime="processes", workers=2))]
        assert admissible(make_cell(), running, jobs=4, core_budget=3)
        assert not admissible(
            make_cell(runtime="processes", workers=2), running,
            jobs=4, core_budget=3,
        )

    def test_cluster_cells_never_overlap(self):
        running = [running_job(make_cell(runtime="cluster_tcp"))]
        other_mesh = make_cell(runtime="cluster_uds")
        assert not admissible(other_mesh, running, jobs=4, core_budget=64)
        assert admissible(make_cell(), running, jobs=4, core_budget=64)

    def test_shm_cells_serialized_against_each_other(self):
        running = [running_job(make_cell(runtime="shm_processes"))]
        assert not admissible(
            make_cell(runtime="shm_processes", pattern="tree"), running,
            jobs=4, core_budget=64,
        )
        assert admissible(
            make_cell(runtime="processes"), running, jobs=4, core_budget=64,
        )

    def test_cell_cost(self):
        assert cell_cost(make_cell(runtime="sim:dask", workers=8)) == 1
        assert cell_cost(make_cell(runtime="serial", workers=8)) == 1
        assert cell_cost(make_cell(runtime="processes", workers=3)) == 3
        assert cell_cost(make_cell(runtime="cluster_tcp", workers=2)) == 3

    def test_core_cost_rejects_bad_workers(self):
        from repro.runtimes import runtime_core_cost

        with pytest.raises(ValueError, match=">= 1"):
            runtime_core_cost("serial", 0)


# ---------------------------------------------------------------------------
# Cell execution
# ---------------------------------------------------------------------------
class TestRunCell:
    @pytest.fixture(autouse=True)
    def pinned_calibration(self, monkeypatch):
        # A pinned reference keeps these tests calibration-free and fast.
        monkeypatch.setenv(PEAK_FLOPS_ENV, "1e9")

    def test_run_metric_records_measurements(self):
        record = run_cell(make_cell(iterations=4))
        assert record["status"] == "ok"
        assert record["key"] == "run-serial-trivial-w2-s3-p0"
        assert record["cell"]["runtime"] == "serial"
        m = record["measurements"]
        assert m["probes"] == 1
        assert m["granularity_seconds"] > 0
        assert 0 <= m["efficiency"]
        assert record["wall_seconds"] > 0

    def test_metg_metric_on_simulated_runtime(self):
        record = run_cell(make_cell(
            runtime="sim:mpi_bulk_sync", metric="metg", width=8, steps=4,
            iterations=1, cores_per_node=8,
        ))
        assert record["status"] == "ok"
        m = record["measurements"]
        assert m["metg_seconds"] > 0
        assert m["probes"] >= 2
        assert m["efficiency"] >= 0.5

    def test_unachievable_target_is_terminal_not_failed(self):
        # Width 2 on a 32-core simulated node caps efficiency at ~6 %:
        # the 50 % target is unreachable at any granularity (paper §5.3).
        record = run_cell(make_cell(
            runtime="sim:mpi_p2p", metric="metg", width=2, steps=4,
            iterations=1, cores_per_node=32, max_iterations=1 << 12,
        ))
        assert record["status"] == "unachievable"
        assert "error" in record
        assert record["key"] in record["key"]

    def test_broken_cell_fails_without_raising(self):
        record = run_cell(make_cell(runtime="warp_drive"))
        assert record["status"] == "failed"
        assert "ValueError" in record["error"]
        assert record["measurements"] == {}


# ---------------------------------------------------------------------------
# The scheduler loop
# ---------------------------------------------------------------------------
class TestRunSuite:
    @pytest.fixture(autouse=True)
    def pinned_calibration(self, monkeypatch):
        monkeypatch.setenv(PEAK_FLOPS_ENV, "1e9")

    def test_parallel_run_completes_every_cell(self, tmp_path):
        spec = small_spec()
        store = SuiteStore(tmp_path / "st")
        lines = []
        summary = run_suite(spec, store, jobs=2, echo=lines.append)
        assert summary.total == 4
        assert summary.skipped == 0
        assert summary.ok == 4
        assert summary.failed == 0
        assert store.completed() == {c.key for c in spec.cells()}
        assert any(line.startswith("[1/4] start") for line in lines)

    def test_resume_skips_completed_and_retries_failed(self, tmp_path):
        spec = small_spec()
        store = SuiteStore(tmp_path / "st")
        run_suite(spec, store, jobs=2)
        keys = sorted(store.completed())
        # Forge one failure: a resume must re-run exactly that cell.
        store.write(fake_record(keys[0], status="failed"))
        before = {
            k: store.cell_path(k).read_bytes() for k in keys[1:]
        }
        summary = run_suite(spec, store, jobs=1, resume=True)
        assert summary.skipped == 3
        assert summary.ran == 1
        assert summary.ok == 1
        # Untouched cells keep their exact bytes.
        for key, blob in before.items():
            assert store.cell_path(key).read_bytes() == blob

    def test_resume_of_complete_store_is_a_no_op(self, tmp_path):
        spec = small_spec()
        store = SuiteStore(tmp_path / "st")
        run_suite(spec, store, jobs=2)
        rows_before = aggregate_rows(store.records())
        summary = run_suite(spec, store, jobs=2, resume=True)
        assert summary.ran == 0
        assert summary.skipped == summary.total == 4
        assert render_csv(aggregate_rows(store.records())) == \
            render_csv(rows_before)

    def test_fresh_run_against_other_spec_store_refuses(self, tmp_path):
        store = SuiteStore(tmp_path / "st")
        run_suite(small_spec(), store, jobs=1)
        with pytest.raises(StoreError, match="refusing"):
            run_suite(small_spec(widths=(8,)), store, jobs=1)

    def test_cell_deadline_kills_and_records_failure(self, tmp_path):
        # One cell whose compute far exceeds the deadline: the scheduler
        # must kill the worker and leave a terminal "failed" record.
        rate = peak_flops_per_core()  # honours the pinned 1e9 env value
        slow_iters = int(20.0 * rate / FLOPS_PER_ITERATION)
        spec = small_spec(
            runtimes=("serial",), patterns=("trivial",), widths=(1,),
            steps=(1,), iterations=slow_iters, cell_timeout=0.4,
        )
        store = SuiteStore(tmp_path / "st")
        summary = run_suite(spec, store, jobs=1)
        assert summary.failed == 1
        record = store.read(spec.cells()[0].key)
        assert record["status"] == "failed"
        assert "deadline" in record["error"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestSuiteCLI:
    @pytest.fixture(autouse=True)
    def pinned_calibration(self, monkeypatch):
        monkeypatch.setenv(PEAK_FLOPS_ENV, "1e9")

    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "smoke.json"
        path.write_text(json.dumps({
            "runtimes": ["serial", "sim:dask"],
            "patterns": ["trivial", "stencil_1d"],
            "widths": [2], "steps": [3], "iterations": 4,
        }))
        return path

    def test_suite_end_to_end_with_csv_and_report(self, spec_file, tmp_path,
                                                  capsys):
        out = tmp_path / "store"
        csv = tmp_path / "agg.csv"
        code = main(["suite", str(spec_file), "--jobs", "2",
                     "--out", str(out), "--csv", str(csv), "--report",
                     "--quiet"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Suite Cells 4 (0 already complete)" in captured
        assert "4 ok" in captured
        text = csv.read_text()
        assert text.startswith("key,metric,runtime")
        assert text.count("\n") == 5  # header + four cells
        assert "metg_seconds" in captured  # the --report table

    def test_refuses_to_clobber_without_resume(self, spec_file, tmp_path,
                                               capsys):
        out = tmp_path / "store"
        assert main(["suite", str(spec_file), "--out", str(out),
                     "--quiet"]) == 0
        assert main(["suite", str(spec_file), "--out", str(out),
                     "--quiet"]) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_rerender_is_byte_identical(self, spec_file, tmp_path):
        out = tmp_path / "store"
        csv1 = tmp_path / "a.csv"
        csv2 = tmp_path / "b.csv"
        assert main(["suite", str(spec_file), "--jobs", "2",
                     "--out", str(out), "--csv", str(csv1), "--quiet"]) == 0
        assert main(["suite", str(spec_file), "--resume",
                     "--out", str(out), "--csv", str(csv2), "--quiet"]) == 0
        assert csv1.read_bytes() == csv2.read_bytes()

    @pytest.mark.parametrize("argv,fragment", [
        ([], "exactly one spec"),
        (["a.json", "b.json"], "exactly one spec"),
        (["--jobs"], "missing its value"),
        (["--jobs", "zero", "s.json"], "expects an integer"),
        (["--jobs", "0", "s.json"], ">= 1"),
        (["--cores", "-2", "s.json"], ">= 1"),
        (["--frobnicate", "s.json"], "unknown suite flag"),
    ])
    def test_usage_errors(self, argv, fragment, capsys):
        assert main(["suite", *argv]) == 2
        assert fragment in capsys.readouterr().err

    def test_bad_spec_file_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"runtimes": ["nope"], "patterns": ["trivial"]}))
        assert main(["suite", str(path)]) == 2
        assert "unknown runtime" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Crash recovery: kill -9 mid-suite, resume, byte-identical aggregate
# ---------------------------------------------------------------------------
class TestKillResume:
    def test_sigkill_then_resume_completes_remainder(self, tmp_path,
                                                     monkeypatch):
        rate = peak_flops_per_core()
        monkeypatch.setenv(PEAK_FLOPS_ENV, repr(rate))
        # Six serial cells of ~0.4 s each (distinguished by payload size so
        # compute time is identical), run with --jobs 1 so the kill lands
        # between cells-in-progress, not after the suite is done.
        cell_iters = max(1, int(0.4 * rate / FLOPS_PER_ITERATION))
        spec_path = tmp_path / "kill.json"
        spec_path.write_text(json.dumps({
            "runtimes": ["serial"], "patterns": ["trivial"],
            "widths": [1], "steps": [1],
            "payload_bytes": [0, 1, 2, 3, 4, 5],
            "iterations": cell_iters,
        }))
        out = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "suite", str(spec_path),
             "--out", str(out), "--quiet"],
            cwd=Path(__file__).resolve().parent.parent,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill once at least one cell is durably recorded but before
            # the whole suite finishes.
            deadline = time.monotonic() + 60
            store = SuiteStore(out)
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                if len(store.completed()) >= 1:
                    break
                time.sleep(0.02)
            assert proc.poll() is None, \
                "suite finished before the kill; cells sized too small"
            assert len(store.completed()) >= 1
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        survivors = {
            key: store.cell_path(key).read_bytes()
            for key in store.completed()
        }
        total = 6
        assert 1 <= len(survivors) < total
        # Every surviving record is whole (valid JSON with a terminal
        # status) — the atomic write never leaves a torn record.
        for blob in survivors.values():
            assert json.loads(blob)["status"] in TERMINAL_STATUSES

        code = main(["suite", str(spec_path), "--resume",
                     "--out", str(out), "--quiet"])
        assert code == 0
        assert len(store.completed()) == total
        # The resume never rewrote what the killed run had recorded.
        for key, blob in survivors.items():
            assert store.cell_path(key).read_bytes() == blob
