"""Unit and integration tests for the distributed executors (repro.cluster).

Three layers, bottom-up:

* the wire codec: frames must round-trip exactly (including empty payloads
  and frames far larger than one socket buffer), and malformed frames must
  raise instead of mis-parse;
* the frame transport: orderly EOF between frames is a clean shutdown,
  EOF inside a frame is evidence of a dead peer;
* the launcher: an injected rank crash surfaces as ``WorkerCrashError``
  (never a hang), a wedged rank as ``WorkerTimeoutError`` within the
  deadline, and the owning executor relaunches a clean mesh afterwards
  with the relaunch accounted as respawns.
"""

from __future__ import annotations

import os
import socket
import tempfile
import threading
import time

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    FrameSocket,
    MSG_HELLO,
    PeerDiedError,
    WireCounters,
    WireError,
    block_owner,
    decode,
    encode_data,
    encode_hello,
    sweep_orphaned_socket_dirs,
)
from repro.cluster.wire import LEN_STRUCT, MAX_FRAME_BYTES
from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.faults import FaultSpec
from repro.runtimes import (
    WorkerCrashError,
    WorkerTimeoutError,
    make_executor,
)
from repro.runtimes.p2p import block_owner as p2p_block_owner
from repro.runtimes.registry import describe_runtimes, runtime_isolation

#: Generous wall-clock bound: "no indefinite hang", with slack for
#: terminate->kill escalation on slow CI hosts.
HANG_BOUND = 20.0

CLUSTER_RUNTIMES = ["cluster_tcp", "cluster_uds"]


def _graph(nbytes=64, **kw) -> TaskGraph:
    kw.setdefault("timesteps", 4)
    kw.setdefault("max_width", 4)
    kw.setdefault("dependence", DependenceType.STENCIL_1D)
    kw.setdefault(
        "kernel", Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2)
    )
    return TaskGraph(output_bytes_per_task=nbytes, **kw)


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


class TestWireCodec:
    def test_hello_round_trip(self):
        assert decode(memoryview(encode_hello(7))) == (MSG_HELLO, 7)

    @pytest.mark.parametrize("nbytes", [0, 1, 16, (1 << 16) + 13])
    def test_data_round_trip(self, nbytes):
        tag = (3, 1, 5, 2)
        payload = np.arange(nbytes, dtype=np.uint8) ^ 0xA5
        header, view = encode_data(tag, payload)
        got_tag, got = decode(memoryview(bytes(header) + bytes(view)))
        assert got_tag == tag
        assert got.dtype == np.uint8
        assert got.tobytes() == payload.tobytes()

    def test_negative_tag_fields_round_trip(self):
        # graph_index/timestep/column are signed in the header.
        tag = (1, 0, -1, -2)
        header, view = encode_data(tag, np.zeros(0, dtype=np.uint8))
        got_tag, _ = decode(memoryview(bytes(header) + bytes(view)))
        assert got_tag == tag

    def test_empty_frame_rejected(self):
        with pytest.raises(WireError, match="empty"):
            decode(memoryview(b""))

    def test_unknown_type_rejected(self):
        with pytest.raises(WireError, match="unknown message type"):
            decode(memoryview(b"\xff\x00\x00\x00"))

    def test_truncated_hello_rejected(self):
        with pytest.raises(WireError):
            decode(memoryview(encode_hello(1)[:-1]))

    def test_counters_snapshot_delta(self):
        counters = WireCounters()
        counters.count_sent(100, 0.25)
        counters.count_received(40, 0.125)
        first = counters.snapshot()
        assert (first.bytes_sent, first.messages_sent) == (100, 1)
        assert (first.bytes_received, first.messages_received) == (40, 1)
        counters.count_sent(1, 0.0)
        delta = counters.snapshot(base=first)
        assert (delta.bytes_sent, delta.messages_sent) == (1, 1)
        assert (delta.bytes_received, delta.messages_received) == (0, 0)


# ---------------------------------------------------------------------------
# Frame transport
# ---------------------------------------------------------------------------


@pytest.fixture
def frame_pair():
    a, b = socket.socketpair()
    left, right = FrameSocket(a), FrameSocket(b)
    yield left, right
    left.close()
    right.close()


class TestFrameSocket:
    def test_round_trip(self, frame_pair):
        left, right = frame_pair
        left.send_frame(b"hello", b" world")
        assert bytes(right.recv_frame()) == b"hello world"

    def test_empty_frame(self, frame_pair):
        left, right = frame_pair
        left.send_frame(b"")
        frame = right.recv_frame()
        assert frame is not None and len(frame) == 0

    def test_large_frame(self, frame_pair):
        """A frame far beyond one socket buffer (> 64 KiB) survives the
        partial-send / partial-recv loops intact."""
        left, right = frame_pair
        payload = np.arange(3 * (1 << 16) + 7, dtype=np.uint8)
        done = threading.Event()

        def send():
            left.send_frame(b"H", memoryview(payload))
            done.set()

        threading.Thread(target=send, daemon=True).start()
        frame = right.recv_frame()
        assert done.wait(timeout=5.0)
        assert bytes(frame) == b"H" + payload.tobytes()

    def test_eof_at_boundary_is_clean(self, frame_pair):
        left, right = frame_pair
        left.send_frame(b"last")
        left.close()
        assert bytes(right.recv_frame()) == b"last"
        assert right.recv_frame() is None

    def test_eof_inside_frame_is_peer_death(self, frame_pair):
        left, right = frame_pair
        # A length prefix promising 100 bytes, then the peer vanishes.
        left._sock.sendall(LEN_STRUCT.pack(100) + b"partial")
        left.close()
        with pytest.raises(PeerDiedError):
            right.recv_frame()

    def test_oversized_length_rejected(self, frame_pair):
        left, right = frame_pair
        left._sock.sendall(LEN_STRUCT.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(WireError, match="exceeds the cap"):
            right.recv_frame()


# ---------------------------------------------------------------------------
# Endpoint mailbox deadline
# ---------------------------------------------------------------------------


def test_endpoint_recv_timeout_raises_promptly():
    """A mailbox wait with a deadline must abort with TransportError when
    the message never arrives and no failure is latched — the backstop
    against lost wakeups that the liveness heartbeat cannot see."""
    from repro.cluster.transport import Endpoint, TransportError, make_listener

    listener, address = make_listener("tcp", 0, None)
    endpoint = Endpoint(0, 1, listener, [address])  # one-rank mesh: no peers
    try:
        start = time.monotonic()
        with pytest.raises(TransportError, match="timed out"):
            endpoint.recv((1, 0, 0, 0), timeout=0.2)
        elapsed = time.monotonic() - start
        assert 0.2 <= elapsed < HANG_BOUND
    finally:
        endpoint.close()


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


def test_block_owner_matches_p2p_partitioning():
    """The cluster must partition columns exactly like the in-process p2p
    executor (same block mapping, same owner for every column)."""
    for width in (1, 2, 3, 5, 8, 17):
        for ranks in (1, 2, 3, 4, 7):
            owners = [block_owner(i, width, ranks) for i in range(width)]
            assert owners == [
                p2p_block_owner(i, width, ranks) for i in range(width)
            ]
            assert owners == sorted(owners)  # contiguous blocks
            assert all(0 <= o < ranks for o in owners)
            if width >= ranks:
                assert set(owners) == set(range(ranks))


# ---------------------------------------------------------------------------
# Launcher + executors
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("runtime", CLUSTER_RUNTIMES)
def test_validated_run_with_wire_traffic(runtime):
    ex = make_executor(runtime, workers=2)
    try:
        g = _graph(timesteps=6, max_width=4)
        r = ex.run([g])
        assert r.validated and r.total_tasks == g.total_tasks()
        wire = r.data_plane.wire
        # A 4-wide stencil over 2 ranks crosses the boundary every step.
        assert wire.messages_sent > 0
        assert wire.bytes_sent == wire.bytes_received > 0
        assert wire.messages_sent == wire.messages_received
    finally:
        ex.close()


def test_no_comm_pattern_sends_nothing():
    ex = make_executor("cluster_uds", workers=2)
    try:
        r = ex.run([_graph(dependence=DependenceType.NO_COMM)])
        assert r.validated
        assert r.data_plane.wire.messages_sent == 0
    finally:
        ex.close()


def test_crash_fault_surfaces_and_mesh_relaunches():
    """An injected SIGKILL in rank 1 surfaces as WorkerCrashError within a
    bounded time; the next run relaunches a clean mesh and accounts the
    relaunch as respawned workers."""
    ex = make_executor(
        "cluster_uds", workers=2, fault=FaultSpec("crash", worker=1, round_index=2)
    )
    try:
        start = time.perf_counter()
        with pytest.raises(WorkerCrashError):
            ex.run([_graph(timesteps=6)])
        assert time.perf_counter() - start < HANG_BOUND
        r = ex.run([_graph(timesteps=6)])  # fault was transient
        assert r.validated
        assert r.faults.worker_crashes == 1
        assert r.faults.workers_respawned == 2
    finally:
        ex.close()


def test_wedge_fault_hits_deadline():
    ex = make_executor(
        "cluster_uds",
        workers=2,
        timeout=2.0,
        fault=FaultSpec("wedge", worker=0, round_index=1),
    )
    try:
        start = time.perf_counter()
        with pytest.raises(WorkerTimeoutError):
            ex.run([_graph(timesteps=6)])
        assert time.perf_counter() - start < HANG_BOUND
    finally:
        ex.close()


def test_close_removes_socket_dir():
    cluster = Cluster(2, "uds")
    uds_dir = cluster._uds_dir
    assert uds_dir is not None and os.path.isdir(uds_dir)
    assert cluster.alive_ranks == 2
    cluster.close()
    assert not os.path.exists(uds_dir)
    assert cluster.alive_ranks == 0
    with pytest.raises(RuntimeError, match="closed"):
        cluster.run([_graph()])


def test_sweep_removes_only_stale_dirs(monkeypatch):
    stale = tempfile.mkdtemp(prefix="taskbench-cluster-")
    fresh = tempfile.mkdtemp(prefix="taskbench-cluster-")
    try:
        old = time.time() - 7200
        os.utime(stale, (old, old))
        removed = sweep_orphaned_socket_dirs()
        assert stale in removed
        assert not os.path.exists(stale)
        assert os.path.isdir(fresh)  # too young to be declared an orphan
    finally:
        for path in (stale, fresh):
            if os.path.exists(path):
                os.rmdir(path)


# ---------------------------------------------------------------------------
# Registry metadata + CLI
# ---------------------------------------------------------------------------


def test_isolation_levels():
    table = {name: isolation for name, isolation, _ in describe_runtimes()}
    assert table["serial"] == "serial"
    assert table["threads"] == "threads"
    assert table["processes"] == "processes"
    assert table["shm_processes"] == "processes"
    assert table["cluster_tcp"] == "cluster"
    assert table["cluster_uds"] == "cluster"
    assert runtime_isolation("cluster_tcp") == "cluster"
    with pytest.raises(ValueError, match="unknown runtime"):
        runtime_isolation("slurm")


def test_core_cost_formulas():
    costs = {name: cost for name, _, cost in describe_runtimes()}
    assert costs["serial"] == "1"
    assert costs["threads"] == "workers"
    assert costs["processes"] == "workers"
    assert costs["cluster_tcp"] == "workers+1"
    assert costs["cluster_uds"] == "workers+1"


def test_cli_list_runtimes(capsys):
    from repro.cli import main

    assert main(["--list-runtimes"]) == 0
    out = capsys.readouterr().out
    rows = [line.split() for line in out.strip().splitlines()]
    assert all(len(row) == 3 for row in rows)
    table = {name: (isolation, cost) for name, isolation, cost in rows}
    assert table["cluster_tcp"] == ("cluster", "workers+1")
    assert table["cluster_uds"] == ("cluster", "workers+1")
    assert table["serial"] == ("serial", "1")
    assert table["processes"] == ("processes", "workers")


def test_cli_crash_fault_exits_nonzero(capsys):
    from repro.cli import main

    code = main(
        [
            "-type", "stencil", "-steps", "8", "-width", "4",
            "-runtime", "cluster_uds", "-workers", "2",
            "--timeout", "30", "--inject-fault", "crash:1:2",
        ]
    )
    assert code == 1
    assert "died mid-run" in capsys.readouterr().err
