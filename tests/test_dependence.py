"""Unit tests for dependence relations (paper Table 2)."""

import pytest

from repro.core import DependenceType
from repro.core.dependence import (
    DependenceSpec,
    clip_intervals,
    count_points,
    interval_points,
    merge_intervals,
)

ALL_TYPES = list(DependenceType)


def spec(dtype, width=8, height=6, **kw):
    return DependenceSpec(dtype, width, height, **kw)


def points(intervals):
    return list(interval_points(intervals))


# ---------------------------------------------------------------------------
# Interval helpers
# ---------------------------------------------------------------------------
class TestIntervalHelpers:
    def test_merge_empty(self):
        assert merge_intervals([]) == []

    def test_merge_single(self):
        assert merge_intervals([5]) == [(5, 5)]

    def test_merge_contiguous(self):
        assert merge_intervals([1, 2, 3]) == [(1, 3)]

    def test_merge_gaps(self):
        assert merge_intervals([1, 3, 4, 9]) == [(1, 1), (3, 4), (9, 9)]

    def test_merge_duplicates(self):
        assert merge_intervals([2, 2, 3, 3]) == [(2, 3)]

    def test_merge_unsorted(self):
        assert merge_intervals([9, 1, 4, 3]) == [(1, 1), (3, 4), (9, 9)]

    def test_count_points(self):
        assert count_points([(1, 3), (7, 7)]) == 4

    def test_interval_points_order(self):
        assert points([(1, 2), (5, 6)]) == [1, 2, 5, 6]

    def test_clip_drops_empty(self):
        assert clip_intervals([(0, 2), (5, 9)], 3, 4) == []

    def test_clip_trims(self):
        assert clip_intervals([(0, 9)], 2, 5) == [(2, 5)]


# ---------------------------------------------------------------------------
# Table 2 equations, checked literally
# ---------------------------------------------------------------------------
class TestTable2:
    def test_trivial_no_deps(self):
        s = spec(DependenceType.TRIVIAL)
        for t in range(1, 6):
            for i in range(8):
                assert s.dependencies(t, i) == []

    def test_stencil_interior(self):
        """Stencil: D(t, i) = {i-1, i, i+1}."""
        s = spec(DependenceType.STENCIL_1D)
        assert points(s.dependencies(3, 4)) == [3, 4, 5]

    def test_stencil_left_edge_clipped(self):
        s = spec(DependenceType.STENCIL_1D)
        assert points(s.dependencies(3, 0)) == [0, 1]

    def test_stencil_right_edge_clipped(self):
        s = spec(DependenceType.STENCIL_1D)
        assert points(s.dependencies(3, 7)) == [6, 7]

    def test_sweep_dom(self):
        """Sweep: D(t, i) = {i-1, i}."""
        s = spec(DependenceType.DOM)
        assert points(s.dependencies(2, 5)) == [4, 5]
        assert points(s.dependencies(2, 0)) == [0]

    def test_fft_strides_double_per_stage(self):
        """FFT: D(t, i) = {i, i - 2^s, i + 2^s}, stride doubling each stage."""
        s = spec(DependenceType.FFT, width=8, height=4)
        assert points(s.dependencies(1, 3)) == [2, 3, 4]  # stride 1
        assert points(s.dependencies(2, 3)) == [1, 3, 5]  # stride 2
        assert points(s.dependencies(3, 3)) == [3, 7]  # stride 4, left clipped

    def test_fft_stride_cycles_beyond_log2_width(self):
        s = spec(DependenceType.FFT, width=4, height=8)
        # stages: stride 1, 2, then cycles back to 1
        assert points(s.dependencies(3, 1)) == [0, 1, 2]

    def test_tree_fans_out_doubling(self):
        s = spec(DependenceType.TREE, width=8, height=6)
        assert [s.width_at_timestep(t) for t in range(6)] == [1, 2, 4, 8, 8, 8]

    def test_tree_parent_is_floor_half(self):
        s = spec(DependenceType.TREE, width=8, height=6)
        for i in range(4):
            assert points(s.dependencies(2, i)) == [i // 2]

    def test_tree_children_after_expansion(self):
        s = spec(DependenceType.TREE, width=8, height=6)
        assert points(s.reverse_dependencies(1, 1)) == [2, 3]

    def test_tree_self_dependency_once_full(self):
        s = spec(DependenceType.TREE, width=8, height=6)
        assert points(s.dependencies(5, 3)) == [3]
        assert points(s.reverse_dependencies(4, 3)) == [3]

    def test_tree_non_power_of_two_width(self):
        s = spec(DependenceType.TREE, width=5, height=5)
        assert [s.width_at_timestep(t) for t in range(5)] == [1, 2, 4, 5, 5]
        # last child interval clipped to the active window
        assert points(s.reverse_dependencies(2, 2)) == [4]


# ---------------------------------------------------------------------------
# Additional official patterns
# ---------------------------------------------------------------------------
class TestOtherPatterns:
    def test_no_comm_self_only(self):
        s = spec(DependenceType.NO_COMM)
        assert points(s.dependencies(1, 5)) == [5]
        assert points(s.reverse_dependencies(1, 5)) == [5]

    def test_periodic_stencil_wraps(self):
        s = spec(DependenceType.STENCIL_1D_PERIODIC)
        assert points(s.dependencies(1, 0)) == [0, 1, 7]
        assert points(s.dependencies(1, 7)) == [0, 6, 7]

    def test_all_to_all(self):
        s = spec(DependenceType.ALL_TO_ALL)
        assert points(s.dependencies(1, 3)) == list(range(8))
        assert points(s.reverse_dependencies(1, 3)) == list(range(8))

    @pytest.mark.parametrize("radix", range(10))
    def test_nearest_radix_counts(self, radix):
        """Nearest with radix r has exactly r deps away from the edges."""
        s = spec(DependenceType.NEAREST, width=32, height=3, radix=radix)
        assert s.num_dependencies(1, 16) == radix

    def test_nearest_radix_zero_is_trivial(self):
        s = spec(DependenceType.NEAREST, radix=0)
        assert s.dependencies(1, 4) == []
        assert s.reverse_dependencies(1, 4) == []

    def test_nearest_centered(self):
        s = spec(DependenceType.NEAREST, width=32, height=3, radix=5)
        assert points(s.dependencies(1, 16)) == [14, 15, 16, 17, 18]

    def test_nearest_even_radix_bias(self):
        # radix 4: window [i-1, i+2] (official clipping convention)
        s = spec(DependenceType.NEAREST, width=32, height=3, radix=4)
        assert points(s.dependencies(1, 16)) == [15, 16, 17, 18]

    def test_spread_maximally_spaced(self):
        s = spec(DependenceType.SPREAD, width=12, height=4, radix=3)
        deps = points(s.dependencies(1, 0))
        assert len(deps) == 3
        gaps = sorted((b - a) % 12 for a, b in zip(deps, deps[1:]))
        assert all(g == 4 for g in gaps)

    def test_spread_rotates_with_timestep(self):
        s = spec(DependenceType.SPREAD, width=12, height=4, radix=3)
        d1 = set(points(s.dependencies(1, 0)))
        d2 = set(points(s.dependencies(2, 0)))
        assert d2 == {(x + 1) % 12 for x in d1}

    def test_spread_radix_exceeding_width_dedupes(self):
        s = spec(DependenceType.SPREAD, width=4, height=3, radix=9)
        assert s.num_dependencies(1, 0) <= 4

    def test_random_nearest_is_deterministic(self):
        a = spec(DependenceType.RANDOM_NEAREST, radix=5, seed=7)
        b = spec(DependenceType.RANDOM_NEAREST, radix=5, seed=7)
        for i in range(8):
            assert a.dependencies(3, i) == b.dependencies(3, i)

    def test_random_nearest_seed_changes_pattern(self):
        a = spec(DependenceType.RANDOM_NEAREST, width=64, height=4, radix=9, seed=1)
        b = spec(DependenceType.RANDOM_NEAREST, width=64, height=4, radix=9, seed=2)
        assert any(
            a.dependencies(2, i) != b.dependencies(2, i) for i in range(64)
        )

    def test_random_nearest_within_window(self):
        s = spec(
            DependenceType.RANDOM_NEAREST, width=64, height=4, radix=5, fraction=1.0
        )
        assert points(s.dependencies(1, 32)) == [30, 31, 32, 33, 34]

    def test_random_nearest_fraction_zero_empty(self):
        s = spec(DependenceType.RANDOM_NEAREST, radix=5, fraction=0.0)
        for i in range(8):
            assert s.dependencies(1, i) == []

    def test_random_nearest_period_repeats(self):
        s = spec(
            DependenceType.RANDOM_NEAREST,
            width=32,
            height=9,
            radix=7,
            period=3,
            fraction=0.5,
        )
        for i in range(32):
            assert s.dependencies(2, i) == s.dependencies(5, i) == s.dependencies(8, i)

    def test_random_nearest_no_period_varies(self):
        s = spec(
            DependenceType.RANDOM_NEAREST,
            width=64,
            height=9,
            radix=9,
            period=-1,
            fraction=0.5,
        )
        assert any(s.dependencies(2, i) != s.dependencies(5, i) for i in range(64))

    def test_random_nearest_fraction_density(self):
        s = spec(
            DependenceType.RANDOM_NEAREST,
            width=256,
            height=3,
            radix=9,
            fraction=0.25,
        )
        total = sum(s.num_dependencies(1, i) for i in range(20, 236))
        candidates = 9 * 216
        assert 0.15 < total / candidates < 0.35


# ---------------------------------------------------------------------------
# Exhaustive forward/backward consistency for every pattern
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dtype", ALL_TYPES)
@pytest.mark.parametrize("width", [1, 2, 5, 8])
def test_forward_backward_inverse(dtype, width):
    s = DependenceSpec(dtype, width, 6, radix=3, fraction=0.5, seed=99)
    fwd = set()
    for t in range(1, 6):
        off = s.offset_at_timestep(t)
        for i in range(off, off + s.width_at_timestep(t)):
            for j in s.dependency_points(t, i):
                assert s.contains_point(t - 1, j)
                fwd.add((t, i, j))
    bwd = set()
    for t in range(0, 5):
        off = s.offset_at_timestep(t)
        for j in range(off, off + s.width_at_timestep(t)):
            for i in s.reverse_dependency_points(t, j):
                assert s.contains_point(t + 1, i)
                bwd.add((t + 1, i, j))
    assert fwd == bwd


@pytest.mark.parametrize("dtype", ALL_TYPES)
def test_max_dependencies_bounds_actual(dtype):
    s = DependenceSpec(dtype, 8, 6, radix=5, fraction=1.0)
    bound = s.max_dependencies()
    for t in range(1, 6):
        off = s.offset_at_timestep(t)
        for i in range(off, off + s.width_at_timestep(t)):
            assert s.num_dependencies(t, i) <= bound


# ---------------------------------------------------------------------------
# Dependence sets (official core API)
# ---------------------------------------------------------------------------
class TestDependenceSets:
    def test_constant_patterns_have_one_set(self):
        for d in (DependenceType.TRIVIAL, DependenceType.STENCIL_1D,
                  DependenceType.DOM, DependenceType.NEAREST,
                  DependenceType.ALL_TO_ALL):
            s = spec(d, height=10)
            assert s.max_dependence_sets() == 1
            assert {s.dependence_set_at_timestep(t) for t in range(10)} == {0}

    def test_fft_sets_cycle_with_stages(self):
        s = DependenceSpec(DependenceType.FFT, 8, 10)
        assert s.max_dependence_sets() == 3  # log2(8) stages
        ids = [s.dependence_set_at_timestep(t) for t in range(1, 10)]
        assert ids == [0, 1, 2, 0, 1, 2, 0, 1, 2]

    def test_tree_sets_expand_then_steady(self):
        s = DependenceSpec(DependenceType.TREE, 8, 8)
        ids = [s.dependence_set_at_timestep(t) for t in range(8)]
        assert ids == [0, 1, 2, 3, 4, 4, 4, 4]
        assert s.max_dependence_sets() == 5

    def test_spread_sets_rotate(self):
        s = DependenceSpec(DependenceType.SPREAD, 6, 14, radix=2)
        assert s.max_dependence_sets() == 6
        assert s.dependence_set_at_timestep(1) == s.dependence_set_at_timestep(7)

    def test_random_period_sets(self):
        s = DependenceSpec(DependenceType.RANDOM_NEAREST, 8, 12, radix=3, period=4)
        assert s.max_dependence_sets() == 4
        s2 = DependenceSpec(DependenceType.RANDOM_NEAREST, 8, 12, radix=3)
        assert s2.max_dependence_sets() == 12  # no repetition

    def test_set_ids_in_range(self):
        for d in ALL_TYPES:
            s = DependenceSpec(d, 8, 12, radix=3, period=3)
            n = s.max_dependence_sets()
            for t in range(12):
                assert 0 <= s.dependence_set_at_timestep(t) < n, d

    @pytest.mark.parametrize("dtype", ALL_TYPES)
    @pytest.mark.parametrize("width", [1, 5, 8])
    def test_equal_sets_imply_equal_structure(self, dtype, width):
        """The defining property: same set id -> same dependencies for
        every column (among timesteps that have a predecessor)."""
        s = DependenceSpec(dtype, width, 12, radix=3, period=3, fraction=0.5)
        by_set = {}
        for t in range(1, 12):
            sid = s.dependence_set_at_timestep(t)
            structure = tuple(
                tuple(s.dependencies(t, i))
                for i in range(s.offset_at_timestep(t),
                               s.offset_at_timestep(t) + s.width_at_timestep(t))
            )
            window = (s.offset_at_timestep(t), s.width_at_timestep(t))
            if sid in by_set:
                assert by_set[sid] == (structure, window), (dtype, t)
            else:
                by_set[sid] = (structure, window)


# ---------------------------------------------------------------------------
# Argument validation
# ---------------------------------------------------------------------------
class TestValidation:
    def test_bad_width(self):
        with pytest.raises(ValueError, match="width"):
            DependenceSpec(DependenceType.TRIVIAL, 0, 5)

    def test_bad_height(self):
        with pytest.raises(ValueError, match="height"):
            DependenceSpec(DependenceType.TRIVIAL, 5, 0)

    def test_bad_radix(self):
        with pytest.raises(ValueError, match="radix"):
            DependenceSpec(DependenceType.NEAREST, 5, 5, radix=-1)

    def test_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            DependenceSpec(DependenceType.RANDOM_NEAREST, 5, 5, fraction=1.5)

    def test_bad_period(self):
        with pytest.raises(ValueError, match="period"):
            DependenceSpec(DependenceType.RANDOM_NEAREST, 5, 5, period=0)

    def test_out_of_range_timestep(self):
        s = spec(DependenceType.STENCIL_1D)
        with pytest.raises(IndexError):
            s.dependencies(6, 0)

    def test_out_of_space_point(self):
        s = spec(DependenceType.TREE)
        with pytest.raises(IndexError):
            s.dependencies(0, 1)  # tree has width 1 at t=0

    def test_contains_point_negative(self):
        s = spec(DependenceType.STENCIL_1D)
        assert not s.contains_point(-1, 0)
        assert not s.contains_point(0, -1)
        assert not s.contains_point(0, 8)

    def test_parse_dependence_type(self):
        assert DependenceType.parse("Stencil_1D") is DependenceType.STENCIL_1D
        with pytest.raises(ValueError, match="unknown dependence"):
            DependenceType.parse("bogus")
