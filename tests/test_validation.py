"""Unit tests for the fully-validating output/input scheme (paper §2)."""

import numpy as np
import pytest

from repro.core import DependenceType, TaskGraph, ValidationError
from repro.core.validation import (
    HEADER_BYTES,
    expected_inputs,
    task_output,
    validate_inputs,
)


def graph(**kw):
    base = dict(timesteps=5, max_width=6, dependence=DependenceType.STENCIL_1D)
    base.update(kw)
    return TaskGraph(**base)


class TestTaskOutput:
    def test_length_matches_config(self):
        for n in (0, 1, 8, 16, 32, 33, 100):
            g = graph(output_bytes_per_task=n)
            assert task_output(g, 2, 3).nbytes == n

    def test_outputs_unique_across_points(self):
        """Paper: 'The output of every task in Task Bench is unique.'"""
        g = graph(output_bytes_per_task=32)
        seen = set()
        for t, i in g.points():
            seen.add(task_output(g, t, i).tobytes())
        assert len(seen) == g.total_tasks()

    def test_outputs_unique_across_graphs(self):
        g0 = graph(graph_index=0, output_bytes_per_task=32)
        g1 = graph(graph_index=1, output_bytes_per_task=32)
        assert task_output(g0, 1, 1).tobytes() != task_output(g1, 1, 1).tobytes()

    def test_outputs_unique_across_seeds(self):
        a = graph(seed=1, output_bytes_per_task=32)
        b = graph(seed=2, output_bytes_per_task=32)
        assert task_output(a, 1, 1).tobytes() != task_output(b, 1, 1).tobytes()

    def test_deterministic(self):
        g = graph()
        assert np.array_equal(task_output(g, 3, 2), task_output(g, 3, 2))

    def test_header_encodes_identity(self):
        g = graph(output_bytes_per_task=64, graph_index=2, seed=77)
        t, i, gidx, seed = task_output(g, 3, 4)[:HEADER_BYTES].view("<i8")
        assert (t, i, gidx, seed) == (3, 4, 2, 77)

    def test_small_outputs_unique_within_graph(self):
        """(t, i) lead the header so 16-byte outputs stay unique."""
        g = graph(output_bytes_per_task=16)
        seen = {task_output(g, t, i).tobytes() for t, i in g.points()}
        assert len(seen) == g.total_tasks()

    def test_tiled_beyond_header(self):
        g = graph(output_bytes_per_task=HEADER_BYTES * 2)
        out = task_output(g, 1, 1)
        assert np.array_equal(out[:HEADER_BYTES], out[HEADER_BYTES:])

    def test_returns_fresh_copy(self):
        g = graph()
        a = task_output(g, 1, 1)
        a[0] ^= 0xFF
        assert not np.array_equal(a, task_output(g, 1, 1))


class TestValidateInputs:
    def test_accepts_expected(self):
        g = graph()
        for t, i in g.points():
            validate_inputs(g, t, i, expected_inputs(g, t, i))

    def test_rejects_missing_input(self):
        g = graph()
        inputs = expected_inputs(g, 2, 3)
        with pytest.raises(ValidationError, match="expected 3 inputs"):
            validate_inputs(g, 2, 3, inputs[:-1])

    def test_rejects_extra_input(self):
        g = graph()
        inputs = expected_inputs(g, 2, 3)
        with pytest.raises(ValidationError):
            validate_inputs(g, 2, 3, inputs + [inputs[0]])

    def test_rejects_wrong_timestep_input(self):
        g = graph(output_bytes_per_task=64)
        stale = [task_output(g, 0, j) for j in g.dependency_points(2, 3)]
        with pytest.raises(ValidationError, match=r"t=0"):
            validate_inputs(g, 2, 3, stale)

    def test_rejects_wrong_column_input(self):
        g = graph(output_bytes_per_task=64)
        inputs = expected_inputs(g, 2, 3)
        inputs[0] = task_output(g, 1, 5)
        with pytest.raises(ValidationError, match="i=5"):
            validate_inputs(g, 2, 3, inputs)

    def test_rejects_wrong_size(self):
        g = graph()
        inputs = expected_inputs(g, 2, 3)
        inputs[0] = inputs[0][:-1]
        with pytest.raises(ValidationError, match="wrong size"):
            validate_inputs(g, 2, 3, inputs)

    def test_rejects_corruption_anywhere(self):
        """Tiled pattern means corruption beyond the header is detected."""
        g = graph(output_bytes_per_task=128)
        inputs = expected_inputs(g, 2, 3)
        inputs[2] = inputs[2].copy()
        inputs[2][100] ^= 0x01
        with pytest.raises(ValidationError, match="slot 2"):
            validate_inputs(g, 2, 3, inputs)

    def test_rejects_cross_graph_input(self):
        g0 = graph(graph_index=0, output_bytes_per_task=64)
        g1 = graph(graph_index=1, output_bytes_per_task=64)
        inputs = expected_inputs(g0, 2, 3)
        inputs[0] = task_output(g1, 1, 2)
        with pytest.raises(ValidationError, match="graph 1"):
            validate_inputs(g0, 2, 3, inputs)

    def test_first_timestep_expects_nothing(self):
        g = graph()
        validate_inputs(g, 0, 0, [])
        with pytest.raises(ValidationError):
            validate_inputs(g, 0, 0, [task_output(g, 0, 0)])

    def test_zero_byte_outputs_validate_by_count(self):
        g = graph(output_bytes_per_task=0)
        validate_inputs(g, 2, 3, expected_inputs(g, 2, 3))

    def test_accepts_flat_bytes_like(self):
        g = graph()
        inputs = [np.asarray(b) for b in expected_inputs(g, 2, 3)]
        validate_inputs(g, 2, 3, inputs)

    def test_expected_inputs_order_matches_dependency_points(self):
        g = graph(dependence=DependenceType.SPREAD, radix=3)
        for t, i in g.points():
            if t == 0:
                continue
            cols = list(g.dependency_points(t, i))
            inputs = expected_inputs(g, t, i)
            assert len(cols) == len(inputs)
            for col, buf in zip(cols, inputs):
                assert np.array_equal(buf, task_output(g, t - 1, col))

    def test_validation_error_is_assertion_error(self):
        """Paper: 'an assertion is thrown if validation fails'."""
        assert issubclass(ValidationError, AssertionError)
