"""Hypothesis property tests on real executors.

For arbitrary graph configurations, every executor must produce a fully
validated execution (the core library checks every input byte) with the
correct totals.  Graph sizes are kept small; correctness, not speed, is
the property.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.runtimes import make_executor

FAST_RUNTIMES = ["serial", "threads", "actors", "dataflow", "ptg", "futures",
                 "bulk_sync", "p2p", "centralized", "asyncio"]

graphs = st.builds(
    TaskGraph,
    timesteps=st.integers(min_value=1, max_value=6),
    max_width=st.integers(min_value=1, max_value=6),
    dependence=st.sampled_from(list(DependenceType)),
    radix=st.integers(min_value=0, max_value=4),
    period=st.sampled_from([-1, 2]),
    fraction_connected=st.sampled_from([0.0, 0.5, 1.0]),
    kernel=st.builds(
        Kernel,
        kernel_type=st.sampled_from(
            [KernelType.EMPTY, KernelType.COMPUTE_BOUND]
        ),
        iterations=st.integers(min_value=0, max_value=4),
    ),
    output_bytes_per_task=st.sampled_from([0, 8, 40]),
    seed=st.integers(min_value=0, max_value=2**31),
)

runtime_names = st.sampled_from(FAST_RUNTIMES)
worker_counts = st.integers(min_value=1, max_value=4)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(graphs, runtime_names, worker_counts)
def test_any_graph_validates_on_any_executor(g, runtime, workers):
    r = make_executor(runtime, workers=workers).run([g])
    assert r.total_tasks == g.total_tasks()
    assert r.total_dependencies == g.total_dependencies()
    assert r.validated


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(graphs, min_size=2, max_size=3), runtime_names)
def test_concurrent_graphs_validate(graph_list, runtime):
    graph_list = [g.with_(graph_index=k) for k, g in enumerate(graph_list)]
    r = make_executor(runtime, workers=2).run(graph_list)
    assert r.total_tasks == sum(g.total_tasks() for g in graph_list)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(graphs)
def test_executors_agree_on_work_accounting(g):
    """Totals in the result derive from the graph alone, so every executor
    reports identical accounting for the same graph."""
    results = [
        make_executor(name, workers=2).run([g])
        for name in ("serial", "actors", "futures")
    ]
    assert len({r.total_tasks for r in results}) == 1
    assert len({r.total_flops for r in results}) == 1
    assert len({r.total_dependencies for r in results}) == 1
