"""Tests for the batch experiment-grid driver."""

import pytest

from repro.analysis.experiments import (
    ExperimentGrid,
    PatternSpec,
    ResultTable,
    run_grid,
)
from repro.core import DependenceType

STENCIL = PatternSpec(DependenceType.STENCIL_1D)
NEAREST5 = PatternSpec(DependenceType.NEAREST, radix=5)


class TestPatternSpec:
    def test_label_plain(self):
        assert STENCIL.label == "stencil_1d"

    def test_label_with_radix(self):
        assert NEAREST5.label == "nearest_r5"

    def test_label_with_graphs(self):
        p = PatternSpec(DependenceType.NEAREST, radix=5, ngraphs=4)
        assert p.label == "nearest_r5_x4"


class TestRunGrid:
    @pytest.fixture(scope="class")
    def table(self):
        grid = ExperimentGrid(
            systems=("mpi_p2p", "charmpp"),
            node_counts=(1, 4),
            patterns=(STENCIL, NEAREST5),
            steps=10,
        )
        return run_grid(grid)

    def test_cell_count(self, table):
        assert len(table) == 2 * 2 * 2

    def test_rows_have_metg(self, table):
        assert all(r["metg_seconds"] is not None for r in table)

    def test_filter(self, table):
        sub = table.filter(system="mpi_p2p", nodes=1)
        assert len(sub) == 2
        assert set(sub.column("pattern")) == {"stencil_1d", "nearest_r5"}

    def test_values(self, table):
        assert table.values("nodes") == [1, 4]

    def test_metg_orderings_hold(self, table):
        """Cross-cutting sanity: more nodes and more deps -> larger METG."""
        def v(**kw):
            return table.filter(**kw).rows[0]["metg_seconds"]

        assert v(system="mpi_p2p", nodes=4, pattern="stencil_1d") > v(
            system="mpi_p2p", nodes=1, pattern="stencil_1d")
        assert v(system="mpi_p2p", nodes=1, pattern="nearest_r5") > v(
            system="mpi_p2p", nodes=1, pattern="stencil_1d")

    def test_to_figure(self, table):
        fig = table.filter(pattern="stencil_1d").to_figure(
            x="nodes", series="system", y="metg_seconds")
        assert set(fig.labels) == {"mpi_p2p", "charmpp"}
        s = fig.get("mpi_p2p")
        assert s.x == [1.0, 4.0]
        assert s.y[1] > s.y[0]

    def test_efficiency_measure(self):
        grid = ExperimentGrid(
            systems=("mpi_p2p",),
            patterns=(STENCIL,),
            measure="efficiency",
            iterations=100000,
            steps=10,
        )
        table = run_grid(grid)
        assert 0.9 < table.rows[0]["efficiency"] <= 1.0
        assert table.rows[0]["granularity_seconds"] > 0

    def test_unachievable_cells_are_none(self):
        grid = ExperimentGrid(
            systems=("spark",),
            patterns=(STENCIL,),
            steps=5,
            target_efficiency=0.99,  # controller floor makes this very hard
            cores_per_node=32,
        )
        table = run_grid(grid)
        # either None (unachievable) or a huge value; the grid must not raise
        assert len(table) == 1

    def test_unknown_measure(self):
        with pytest.raises(ValueError, match="measure"):
            run_grid(ExperimentGrid(measure="vibes"))

    def test_payload_sweep(self):
        grid = ExperimentGrid(
            systems=("mpi_p2p",),
            node_counts=(4,),
            patterns=(STENCIL,),
            output_bytes=(16, 65536),
            steps=10,
        )
        table = run_grid(grid)
        small, big = (r["metg_seconds"] for r in table)
        assert big > small  # larger payloads need larger tasks


class TestResultTable:
    def rows(self):
        return [
            {"system": "a", "nodes": 1, "metg_seconds": 1e-6},
            {"system": "a", "nodes": 4, "metg_seconds": 2e-6},
            {"system": "b", "nodes": 1, "metg_seconds": None},
        ]

    def test_to_figure_skips_none(self):
        fig = ResultTable(self.rows()).to_figure(
            x="nodes", series="system", y="metg_seconds")
        assert fig.labels == ["a"]  # b had no valid points

    def test_csv_round_trip(self, tmp_path):
        path = tmp_path / "table.csv"
        t = ResultTable(self.rows())
        t.to_csv(path)
        t2 = ResultTable.from_csv(path)
        assert len(t2) == 3
        assert t2.rows[0]["system"] == "a"
        assert t2.rows[0]["nodes"] == 1
        assert t2.rows[1]["metg_seconds"] == pytest.approx(2e-6)
        assert t2.rows[2]["metg_seconds"] is None

    def test_iteration(self):
        assert [r["system"] for r in ResultTable(self.rows())] == ["a", "a", "b"]

    def test_figure_round_trips_through_archive(self, tmp_path):
        from repro.analysis import load_figure_json, save_figure_json

        fig = ResultTable(self.rows()).to_figure(
            x="nodes", series="system", y="metg_seconds")
        save_figure_json(fig, tmp_path / "f.json")
        assert load_figure_json(tmp_path / "f.json") == fig
