"""Unit tests for task kernels (paper §2, Listing 1)."""

import time

import numpy as np
import pytest

from repro.core import (
    FLOPS_PER_ITERATION,
    KERNEL_VECTOR_WIDTH,
    Kernel,
    KernelType,
)
from repro.core.kernels import (
    KernelTimeModel,
    execute_kernel_busy_wait,
    execute_kernel_compute,
    execute_kernel_compute2,
    execute_kernel_memory,
)


class TestComputeKernel:
    def test_vector_width_matches_listing1(self):
        assert KERNEL_VECTOR_WIDTH == 64

    def test_zero_iterations_initial_value(self):
        a = execute_kernel_compute(0)
        assert a.shape == (64,)
        assert np.all(a == 1.2345)

    def test_one_iteration_exact(self):
        a = execute_kernel_compute(1)
        expected = 1.2345 * 1.2345 + 1.2345
        assert np.allclose(a, expected)

    def test_values_saturate_without_nan(self):
        """The dependent chain overflows to inf (like the C kernel) but must
        never produce NaN, which would poison FLOP accounting."""
        a = execute_kernel_compute(64)
        assert np.all(np.isinf(a))
        assert not np.any(np.isnan(a))

    def test_compute2_equivalent_length(self):
        a = execute_kernel_compute2(3)
        assert a.shape == (64,)

    def test_flops_accounting(self):
        k = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=10)
        assert k.flops_per_task() == 10 * FLOPS_PER_ITERATION
        assert FLOPS_PER_ITERATION == 2 * 64

    def test_duration_scales_with_iterations(self):
        def t(n):
            start = time.perf_counter()
            for _ in range(5):
                execute_kernel_compute(n)
            return time.perf_counter() - start

        t(64)  # warm up
        assert t(512) > t(32)


class TestMemoryKernel:
    def test_copies_src_to_dst(self):
        scratch = np.zeros(64, dtype=np.uint8)
        scratch[:32] = np.arange(32, dtype=np.uint8)
        execute_kernel_memory(scratch, iterations=1, span_bytes=32)
        assert np.array_equal(scratch[32:], scratch[:32])

    def test_wraps_around_working_set(self):
        scratch = np.zeros(20, dtype=np.uint8)
        scratch[:10] = np.arange(1, 11, dtype=np.uint8)
        # 4 iterations x 6-byte span = 24 bytes > 10-byte half: must wrap
        execute_kernel_memory(scratch, iterations=4, span_bytes=6)
        assert np.array_equal(scratch[10:], scratch[:10])

    def test_constant_working_set(self):
        """Bytes touched per call spans the whole buffer even for few
        iterations (the paper's anti-cache-effect design)."""
        scratch = np.zeros(40, dtype=np.uint8)
        scratch[:20] = 7
        execute_kernel_memory(scratch, iterations=2, span_bytes=10)
        assert np.count_nonzero(scratch[20:]) == 20

    def test_span_larger_than_half_clipped(self):
        scratch = np.zeros(16, dtype=np.uint8)
        scratch[:8] = 3
        execute_kernel_memory(scratch, iterations=1, span_bytes=100)
        assert np.all(scratch[8:] == 3)

    def test_requires_uint8(self):
        with pytest.raises(ValueError, match="uint8"):
            execute_kernel_memory(np.zeros(8, dtype=np.float64), 1, 4)

    def test_zero_sized_buffer_noop(self):
        execute_kernel_memory(np.zeros(0, dtype=np.uint8), 5, 4)
        execute_kernel_memory(np.zeros(1, dtype=np.uint8), 5, 4)

    def test_bytes_accounting(self):
        k = Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=5, span_bytes=100)
        assert k.bytes_per_task() == 2 * 5 * 100


class TestBusyWaitKernel:
    def test_waits_at_least_requested(self):
        start = time.perf_counter()
        execute_kernel_busy_wait(2000)  # 2 ms
        assert time.perf_counter() - start >= 0.002

    def test_zero_wait_returns(self):
        execute_kernel_busy_wait(0)


class TestLoadImbalance:
    def test_multiplier_deterministic(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=100, imbalance=1.0)
        assert k.duration_multiplier(3, 4, seed=1) == k.duration_multiplier(3, 4, seed=1)

    def test_multiplier_range(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=100, imbalance=1.0)
        ms = [k.duration_multiplier(t, i, seed=5) for t in range(20) for i in range(20)]
        assert all(0.0 < m <= 1.0 for m in ms)
        assert min(ms) < 0.2 and max(ms) > 0.8  # actually spreads out

    def test_multiplier_uniformish(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=100, imbalance=1.0)
        ms = [k.duration_multiplier(t, i, seed=5) for t in range(50) for i in range(50)]
        assert abs(np.mean(ms) - 0.5) < 0.05

    def test_imbalance_zero_is_constant(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=100, imbalance=0.0)
        assert k.effective_iterations(7, 9) == 100

    def test_effective_iterations_scaled(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=1000, imbalance=1.0)
        effs = {k.effective_iterations(t, i, seed=2) for t in range(10) for i in range(10)}
        assert len(effs) > 50
        assert all(0 <= e <= 1000 for e in effs)

    def test_partial_imbalance_bounds(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=100, imbalance=0.5)
        ms = [k.duration_multiplier(t, i) for t in range(30) for i in range(30)]
        assert all(0.5 < m <= 1.0 for m in ms)

    def test_flops_accounting_uses_effective(self):
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=100, imbalance=1.0)
        assert k.flops_per_task(1, 2, 3) == k.effective_iterations(1, 2, 3) * FLOPS_PER_ITERATION


class TestKernelExecuteDispatch:
    def test_empty_runs(self):
        Kernel(kernel_type=KernelType.EMPTY).execute(0, 0)

    def test_compute_runs(self):
        Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2).execute(0, 0)

    def test_compute2_runs(self):
        Kernel(kernel_type=KernelType.COMPUTE_BOUND2, iterations=2).execute(0, 0)

    def test_memory_requires_scratch(self):
        k = Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1, span_bytes=4)
        with pytest.raises(ValueError, match="scratch"):
            k.execute(0, 0, scratch=None)

    def test_memory_runs_with_scratch(self):
        k = Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1, span_bytes=4)
        k.execute(0, 0, scratch=np.zeros(16, dtype=np.uint8))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Kernel(iterations=-1)
        with pytest.raises(ValueError):
            Kernel(span_bytes=-1)
        with pytest.raises(ValueError):
            Kernel(imbalance=2.0)
        with pytest.raises(ValueError):
            Kernel(wait_us=-1.0)

    def test_parse_kernel_type(self):
        assert KernelType.parse("COMPUTE_BOUND") is KernelType.COMPUTE_BOUND
        with pytest.raises(ValueError, match="unknown kernel"):
            KernelType.parse("nope")


class TestKernelTimeModel:
    def test_compute_time_linear(self):
        m = KernelTimeModel(seconds_per_iteration=1e-8)
        k = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=1000)
        assert m.task_seconds(k) == pytest.approx(1e-5)

    def test_empty_time_is_base(self):
        m = KernelTimeModel(base_seconds=2e-9)
        assert m.task_seconds(Kernel()) == pytest.approx(2e-9)

    def test_busy_wait_time(self):
        m = KernelTimeModel()
        k = Kernel(kernel_type=KernelType.BUSY_WAIT, wait_us=50)
        assert m.task_seconds(k) == pytest.approx(50e-6)

    def test_memory_time_from_bandwidth(self):
        m = KernelTimeModel(bytes_per_second=1e9)
        k = Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=10, span_bytes=500)
        assert m.task_seconds(k) == pytest.approx(10 * 2 * 500 / 1e9)

    def test_imbalance_time_varies(self):
        m = KernelTimeModel(seconds_per_iteration=1e-8)
        k = Kernel(kernel_type=KernelType.LOAD_IMBALANCE, iterations=10000, imbalance=1.0)
        times = {m.task_seconds(k, t, i, seed=3) for t in range(10) for i in range(10)}
        assert len(times) > 50


class TestIOKernel:
    def test_runs_and_cleans_up(self, tmp_path, monkeypatch):
        import glob
        import tempfile

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        from repro.core import execute_kernel_io

        execute_kernel_io(3, 4096)
        assert glob.glob(str(tmp_path / "taskbench-io-*")) == []

    def test_zero_iterations_noop(self):
        from repro.core import execute_kernel_io

        execute_kernel_io(0, 4096)
        execute_kernel_io(3, 0)

    def test_kernel_dispatch(self):
        Kernel(kernel_type=KernelType.IO_BOUND, iterations=1, span_bytes=64).execute(0, 0)

    def test_bytes_accounting(self):
        k = Kernel(kernel_type=KernelType.IO_BOUND, iterations=5, span_bytes=100)
        assert k.bytes_per_task() == 1000

    def test_time_model_uses_io_bandwidth(self):
        m = KernelTimeModel(io_bytes_per_second=1e6)
        k = Kernel(kernel_type=KernelType.IO_BOUND, iterations=10, span_bytes=500)
        import pytest as _pytest

        assert m.task_seconds(k) == _pytest.approx(10 * 2 * 500 / 1e6)

    def test_parse(self):
        assert KernelType.parse("io_bound") is KernelType.IO_BOUND

    def test_executor_end_to_end(self):
        from repro.core import DependenceType, TaskGraph
        from repro.runtimes import make_executor

        g = TaskGraph(
            timesteps=3,
            max_width=2,
            dependence=DependenceType.STENCIL_1D,
            kernel=Kernel(kernel_type=KernelType.IO_BOUND, iterations=1,
                          span_bytes=256),
        )
        r = make_executor("serial").run([g])
        assert r.total_bytes == 6 * 2 * 256
