"""Tests for the GPU offload model (paper §5.8, Figure 13)."""

import pytest

from repro.sim import (
    GPUNodeSpec,
    PIZ_DAINT,
    cpu_time_per_timestep,
    crossover_problem_size,
    figure13_series,
    gpu_time_per_timestep_w1,
    gpu_time_per_timestep_w4,
)


class TestSpec:
    def test_piz_daint_peaks_match_paper(self):
        """Paper §5.8: CPU 5.726e11 FLOP/s, GPU 4.759e12 FLOP/s."""
        assert PIZ_DAINT.cpu_flops == pytest.approx(5.726e11)
        assert PIZ_DAINT.gpu_flops == pytest.approx(4.759e12)
        assert PIZ_DAINT.cpu_cores == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            GPUNodeSpec(cpu_cores=0)
        with pytest.raises(ValueError):
            GPUNodeSpec(gpu_flops=0)
        with pytest.raises(ValueError):
            GPUNodeSpec(arithmetic_intensity=0)

    def test_copy_bytes_scale_with_problem(self):
        assert PIZ_DAINT.copy_bytes(1e9) > PIZ_DAINT.copy_bytes(1e6) > 0


class TestTimestepModels:
    def test_cpu_approaches_cpu_peak(self):
        flops = 1e12
        rate = flops / cpu_time_per_timestep(PIZ_DAINT, flops)
        assert rate == pytest.approx(PIZ_DAINT.cpu_flops, rel=0.01)

    def test_w4_approaches_gpu_peak(self):
        flops = 1e13
        rate = flops / gpu_time_per_timestep_w4(PIZ_DAINT, flops)
        assert rate > 0.95 * PIZ_DAINT.gpu_flops

    def test_w1_capped_below_gpu_peak_by_copies(self):
        """w1's serial copies keep it measurably below the GPU peak even at
        the largest problem sizes."""
        flops = 1e13
        rate = flops / gpu_time_per_timestep_w1(PIZ_DAINT, flops)
        w4_rate = flops / gpu_time_per_timestep_w4(PIZ_DAINT, flops)
        assert rate < w4_rate

    def test_w1_beats_w4_at_small_sizes(self):
        """Paper: w4 'drops more rapidly at smaller problem sizes' (4x the
        kernel-launch overhead)."""
        flops = 1e5
        assert gpu_time_per_timestep_w1(PIZ_DAINT, flops) < gpu_time_per_timestep_w4(
            PIZ_DAINT, flops
        )

    def test_times_monotone_in_flops(self):
        for fn in (gpu_time_per_timestep_w1, gpu_time_per_timestep_w4):
            assert fn(PIZ_DAINT, 1e10) > fn(PIZ_DAINT, 1e8)


class TestFigure13:
    def test_series_present(self):
        data = figure13_series()
        assert set(data) == {"mpi_cpu", "mpi_cuda_w1", "mpi_cuda_w4"}

    def test_cpu_wins_at_small_granularity(self):
        """Paper §5.8: 'the overhead of copying data dominates at small
        task granularities, where the CPU achieves higher performance'."""
        data = figure13_series()
        smallest = 0
        assert data["mpi_cpu"][smallest][1] > data["mpi_cuda_w1"][smallest][1]
        assert data["mpi_cpu"][smallest][1] > data["mpi_cuda_w4"][smallest][1]

    def test_gpu_wins_at_large_granularity(self):
        data = figure13_series()
        assert data["mpi_cuda_w4"][-1][1] > data["mpi_cpu"][-1][1]
        assert data["mpi_cuda_w1"][-1][1] > data["mpi_cpu"][-1][1]

    def test_w4_higher_asymptote_than_w1(self):
        """Paper: 'w4 achieves higher FLOP/s'."""
        data = figure13_series()
        assert data["mpi_cuda_w4"][-1][1] > data["mpi_cuda_w1"][-1][1]

    def test_crossover_exists_and_is_interior(self):
        x = crossover_problem_size()
        sizes = [p[0] for p in figure13_series()["mpi_cpu"]]
        assert sizes[0] < x < sizes[-1]

    def test_custom_problem_sizes(self):
        data = figure13_series(problem_sizes=[1e6, 1e9])
        assert len(data["mpi_cpu"]) == 2

    def test_rates_positive_and_bounded(self):
        data = figure13_series()
        for label, pts in data.items():
            for flops, rate in pts:
                assert 0 < rate <= PIZ_DAINT.gpu_flops * 1.001, label
