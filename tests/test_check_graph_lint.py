"""Tests for the static task-graph lint (repro.check.graph_lint)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import critical_path_seconds, lint_graphs, peak_payload_bytes
from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.core.diagnostics import Severity, findings
from repro.sim.machine import MachineSpec


def make_graph(**kw):
    base = dict(
        timesteps=6,
        max_width=4,
        dependence=DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=64),
        output_bytes_per_task=16,
    )
    base.update(kw)
    return TaskGraph(**base)


def codes(diags):
    return {d.code for d in diags}


# ----------------------------------------------------------------------
# Broken-by-construction graphs, one per finding class
# ----------------------------------------------------------------------
class _DroppedConsumerGraph(TaskGraph):
    """Stencil whose producer (2, 1) forgets to release consumer column 1.

    The shape of bug graph_lint exists to catch statically: ``dependencies``
    and ``reverse_dependencies`` silently disagree, so a real executor's
    dependency counter never reaches zero and the run hangs.
    """

    def reverse_dependency_points(self, t, i):
        for j in super().reverse_dependency_points(t, i):
            if (t, i) == (2, 1) and j == 1:
                continue
            yield j


class _LyingCountGraph(TaskGraph):
    """Reports one more dependency per task than its intervals cover."""

    def num_dependencies(self, t, i):
        return super().num_dependencies(t, i) + 1


def test_duality_break_reported():
    diags = lint_graphs([_DroppedConsumerGraph(timesteps=6, max_width=4,
                                               dependence=DependenceType.STENCIL_1D)])
    found = codes(findings(diags))
    assert "graph-duality" in found
    by_code = {d.code: d for d in diags}
    assert "(t=2, i=1)" in by_code["graph-duality"].message  # the producer
    assert "(t=3, i=1)" in by_code["graph-duality"].location  # the consumer
    assert by_code["graph-duality"].hint  # every finding is actionable


def test_broken_duality_deadlocks_replay():
    diags = lint_graphs([_DroppedConsumerGraph(timesteps=6, max_width=4,
                                               dependence=DependenceType.STENCIL_1D)])
    cycle = [d for d in diags if d.code == "graph-cycle"]
    assert cycle and cycle[0].severity is Severity.ERROR
    assert "deadlocked" in cycle[0].message


def test_dep_count_mismatch_reported():
    diags = lint_graphs([_LyingCountGraph(timesteps=4, max_width=3,
                                          dependence=DependenceType.STENCIL_1D)])
    assert "graph-dep-count" in codes(findings(diags))


def test_memory_overcommit_warned():
    tiny = MachineSpec(nodes=1, cores_per_node=4, memory_per_node=1024.0)
    g = make_graph(output_bytes_per_task=4096)
    diags = lint_graphs([g], tiny)
    over = [d for d in diags if d.code == "graph-memory-overcommit"]
    assert over and over[0].severity is Severity.WARNING
    assert f"{peak_payload_bytes([g]):,}" in over[0].message


def test_memory_fits_no_warning():
    diags = lint_graphs([make_graph()], MachineSpec())
    assert "graph-memory-overcommit" not in codes(diags)


def test_infeasible_critical_path_reported():
    g = make_graph(kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND,
                                 iterations=1 << 20))
    diags = lint_graphs([g], time_budget_seconds=1e-30)
    assert "graph-infeasible" in codes(findings(diags))
    # with a generous budget the same graph is feasible
    diags = lint_graphs([g], time_budget_seconds=1e9)
    assert "graph-infeasible" not in codes(diags)


def test_critical_path_info_always_emitted():
    diags = lint_graphs([make_graph()])
    cp = [d for d in diags if d.code == "graph-critical-path"]
    assert cp and cp[0].severity is Severity.INFO
    assert not findings(cp)  # advisory: never fails a check run


def test_critical_path_grows_with_depth():
    machine = MachineSpec()
    short = critical_path_seconds([make_graph(timesteps=4)], machine)
    long = critical_path_seconds([make_graph(timesteps=8)], machine)
    assert long > short > 0.0


def test_critical_path_is_max_over_concurrent_graphs():
    machine = MachineSpec()
    a = make_graph(timesteps=4)
    b = make_graph(timesteps=8, graph_index=1)
    assert critical_path_seconds([a, b], machine) == \
        critical_path_seconds([b], machine)


def test_clean_multi_graph_config_passes():
    graphs = [
        make_graph(),
        make_graph(dependence=DependenceType.NEAREST, radix=3, graph_index=1),
        make_graph(dependence=DependenceType.FFT, max_width=8, graph_index=2),
    ]
    assert findings(lint_graphs(graphs)) == []


# ----------------------------------------------------------------------
# Property: the lint passes on every well-formed generated configuration
# ----------------------------------------------------------------------
graph_configs = st.builds(
    TaskGraph,
    timesteps=st.integers(min_value=1, max_value=8),
    max_width=st.integers(min_value=1, max_value=12),
    dependence=st.sampled_from(list(DependenceType)),
    radix=st.integers(min_value=1, max_value=5),
    period=st.sampled_from([-1, 1, 2, 3]),
    fraction_connected=st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False),
    output_bytes_per_task=st.sampled_from([0, 16, 256]),
    seed=st.integers(min_value=0, max_value=2**32),
)


@settings(max_examples=50, deadline=None)
@given(graph_configs)
def test_lint_clean_on_generated_configs(g):
    """Every graph the library can construct is well-formed by construction:
    duality holds, the replay retires every task, counts agree."""
    assert findings(lint_graphs([g])) == []
