"""Tests for the persistent-imbalance extension (paper §5.7 future work).

The paper's imbalance is non-persistent ("timestep t is uncorrelated with
timestep t+1"), which asynchrony alone partially mitigates because per-core
work averages out over time.  With *persistent* imbalance the same columns
are slow every timestep, per-core work never averages out, and only
migration (here: work stealing) recovers efficiency.
"""

from repro.core import DependenceType, Kernel, KernelType, TaskGraph
from repro.core import parse_args
from repro.metg import SimRunner, compute_workload, measure
from repro.sim import IDEAL, MachineSpec, RuntimeModel, simulate_with_stats


def imbalanced_kernel(persistent, iterations=10000):
    return Kernel(
        kernel_type=KernelType.LOAD_IMBALANCE,
        iterations=iterations,
        imbalance=1.0,
        persistent=persistent,
    )


class TestKernelSemantics:
    def test_persistent_multiplier_constant_over_time(self):
        k = imbalanced_kernel(True)
        ms = {k.duration_multiplier(t, 3, seed=1) for t in range(50)}
        assert len(ms) == 1

    def test_non_persistent_varies_over_time(self):
        k = imbalanced_kernel(False)
        ms = {k.duration_multiplier(t, 3, seed=1) for t in range(50)}
        assert len(ms) > 25

    def test_persistent_varies_across_columns(self):
        k = imbalanced_kernel(True)
        ms = {k.duration_multiplier(0, i, seed=1) for i in range(50)}
        assert len(ms) > 25

    def test_cli_flag(self):
        app = parse_args(
            ["-kernel", "load_imbalance", "-iter", "10", "-imbalance", "1.0",
             "-persistent-imbalance"]
        )
        assert app.graphs[0].kernel.persistent is True

    def test_total_flops_differ_between_modes(self):
        base = dict(timesteps=20, max_width=8,
                    dependence=DependenceType.NEAREST)
        gu = TaskGraph(kernel=imbalanced_kernel(False), **base)
        gp = TaskGraph(kernel=imbalanced_kernel(True), **base)
        assert gu.total_flops() != gp.total_flops()


class TestSimulatedPhenomena:
    MACHINE = MachineSpec(nodes=1, cores_per_node=8)

    def _model(self, stealing):
        return RuntimeModel(
            name="x",
            execution="async",
            task_overhead_s=0.0,
            dep_overhead_s=0.0,
            send_overhead_s=0.0,
            work_stealing=stealing,
            steal_overhead_s=1e-7,
        )

    def _graphs(self, persistent):
        return [
            TaskGraph(
                timesteps=20,
                max_width=8,
                dependence=DependenceType.NEAREST,
                radix=5,
                kernel=imbalanced_kernel(persistent, iterations=50000),
                graph_index=k,
            )
            for k in range(4)
        ]

    def _efficiency(self, persistent, stealing):
        gs = self._graphs(persistent)
        result, _ = simulate_with_stats(
            gs, self.MACHINE, self._model(stealing), IDEAL
        )
        return result.flops_per_second / self.MACHINE.peak_flops

    def test_asynchrony_mitigates_uniform_better_than_persistent(self):
        """Without stealing, async execution handles fresh-draw imbalance
        (work averages over time) far better than persistent imbalance
        (the slow column is always the bottleneck)."""
        uniform = self._efficiency(persistent=False, stealing=False)
        persistent = self._efficiency(persistent=True, stealing=False)
        assert uniform > persistent * 1.15

    def test_stealing_recovers_persistent_imbalance(self):
        plain = self._efficiency(persistent=True, stealing=False)
        stolen = self._efficiency(persistent=True, stealing=True)
        assert stolen > plain * 1.1

    def test_persistent_per_core_imbalance_is_structural(self):
        """The per-core busy-time imbalance factor stays high without
        stealing and collapses with it."""
        gs = self._graphs(True)
        _, plain = simulate_with_stats(gs, self.MACHINE, self._model(False), IDEAL)
        _, stolen = simulate_with_stats(gs, self.MACHINE, self._model(True), IDEAL)
        assert plain.imbalance_factor > 1.3
        assert stolen.imbalance_factor < plain.imbalance_factor

    def test_metg_workload_flag(self):
        runner = SimRunner(self._model(False), self.MACHINE, IDEAL,
                           scale_reserved=False)
        wl = compute_workload(
            runner.worker_width, steps=15,
            dependence=DependenceType.NEAREST, radix=5, ngraphs=4,
            kernel_type=KernelType.LOAD_IMBALANCE, imbalance=1.0,
            persistent_imbalance=True,
        )
        m = measure(runner, wl, 50000)
        assert 0.0 < m.efficiency < 0.9
