"""Unit tests for run metrics and the task-granularity formula (paper §4)."""

import pytest

from repro.core import (
    DependenceType,
    Kernel,
    KernelType,
    RunResult,
    TaskGraph,
    summarize_graphs,
)


def result(**kw):
    base = dict(
        executor="test",
        elapsed_seconds=2.0,
        cores=4,
        total_tasks=100,
        total_dependencies=300,
        total_flops=800,
        total_bytes=1600,
    )
    base.update(kw)
    return RunResult(**base)


class TestDerivedQuantities:
    def test_flops_per_second(self):
        assert result().flops_per_second == 400.0

    def test_bytes_per_second(self):
        assert result().bytes_per_second == 800.0

    def test_tasks_per_second(self):
        assert result().tasks_per_second == 50.0

    def test_task_granularity_formula(self):
        """Task granularity = wall time x cores / tasks (paper §4)."""
        r = result(elapsed_seconds=1.0, cores=32, total_tasks=32000)
        assert r.task_granularity_seconds == pytest.approx(0.001)

    def test_efficiency(self):
        assert result().efficiency(800.0) == pytest.approx(0.5)

    def test_memory_efficiency(self):
        assert result().memory_efficiency(1600.0) == pytest.approx(0.5)

    def test_efficiency_rejects_bad_peak(self):
        with pytest.raises(ValueError):
            result().efficiency(0.0)
        with pytest.raises(ValueError):
            result().memory_efficiency(-1.0)

    def test_zero_elapsed_rates_are_zero(self):
        r = result(elapsed_seconds=0.0)
        assert r.flops_per_second == 0.0
        assert r.tasks_per_second == 0.0

    def test_with_elapsed(self):
        r = result().with_elapsed(4.0)
        assert r.elapsed_seconds == 4.0 and r.total_tasks == 100


class TestInvariants:
    def test_rejects_negative_elapsed(self):
        with pytest.raises(ValueError):
            result(elapsed_seconds=-1.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            result(cores=0)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            result(total_tasks=0)


class TestReport:
    def test_report_contains_uniform_fields(self):
        text = result().report()
        for field in ("Total Tasks", "Total Dependencies", "Elapsed Time",
                      "FLOP/s", "Task Granularity"):
            assert field in text


class TestSummarizeGraphs:
    def graphs(self):
        k = Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=4)
        return [
            TaskGraph(timesteps=4, max_width=4,
                      dependence=DependenceType.STENCIL_1D, kernel=k,
                      graph_index=0),
            TaskGraph(timesteps=4, max_width=2,
                      dependence=DependenceType.TRIVIAL, kernel=k,
                      graph_index=1),
        ]

    def test_totals_sum_over_graphs(self):
        r = summarize_graphs("x", self.graphs(), 1.0, 2)
        assert r.total_tasks == 16 + 8
        assert r.total_flops == 24 * 4 * 128

    def test_dependencies_sum(self):
        gs = self.graphs()
        r = summarize_graphs("x", gs, 1.0, 2)
        assert r.total_dependencies == sum(g.total_dependencies() for g in gs)

    def test_requires_graphs(self):
        with pytest.raises(ValueError):
            summarize_graphs("x", [], 1.0, 2)

    def test_validated_flag_carried(self):
        r = summarize_graphs("x", self.graphs(), 1.0, 2, validated=False)
        assert r.validated is False
