"""Tests for ASCII plotting."""

import pytest

from repro.analysis import ascii_plot, sparkline
from repro.analysis.figures import FigureData, Series


def fig(series=None):
    return FigureData(
        "figT", "test figure", "size", "rate",
        series or [
            Series("up", [1.0, 10.0, 100.0], [1.0, 10.0, 100.0]),
            Series("down", [1.0, 10.0, 100.0], [100.0, 10.0, 1.0]),
        ],
    )


class TestAsciiPlot:
    def test_contains_title_axes_legend(self):
        text = ascii_plot(fig())
        assert "figT" in text
        assert "x: size (log)" in text
        assert "legend:" in text
        assert "o=up" in text and "x=down" in text

    def test_dimensions(self):
        text = ascii_plot(fig(), width=40, height=10)
        plot_rows = [l for l in text.splitlines() if "|" in l]
        assert len(plot_rows) == 10
        assert all(len(l.split("|", 1)[1]) == 40 for l in plot_rows)

    def test_monotone_series_renders_diagonal(self):
        text = ascii_plot(fig([Series("up", [1, 10, 100], [1, 10, 100])]),
                          width=30, height=9)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        cols = [r.index("o") for r in rows if "o" in r]
        # rows run top (high y, high x) to bottom (low y, low x), so the
        # marker column decreases down the plot
        assert cols == sorted(cols, reverse=True)

    def test_overlap_marked(self):
        a = Series("a", [1.0, 10.0], [5.0, 5.0])
        b = Series("b", [1.0, 10.0], [5.0, 5.0])
        text = ascii_plot(fig([a, b]), width=20, height=5)
        assert "?" in text

    def test_crossing_series_both_visible(self):
        text = ascii_plot(fig(), width=40, height=12)
        assert "o" in text and "x" in text

    def test_log_axis_drops_nonpositive(self):
        s = Series("z", [0.0, 1.0, 10.0], [0.0, 1.0, 10.0])
        text = ascii_plot(fig([s]))
        assert "1" in text  # the surviving range renders

    def test_all_nonpositive_handled(self):
        s = Series("z", [0.0], [0.0])
        assert "no plottable points" in ascii_plot(fig([s]))

    def test_linear_axes(self):
        text = ascii_plot(fig(), logx=False, logy=False)
        assert "(log)" not in text

    def test_single_point(self):
        text = ascii_plot(fig([Series("p", [5.0], [7.0])]), width=20, height=5)
        assert "o" in text

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot(fig(), width=5, height=2)

    def test_many_series_cycle_marks(self):
        series = [Series(f"s{k}", [1.0, 2.0], [float(k + 1)] * 2)
                  for k in range(15)]
        text = ascii_plot(fig(series))
        assert "legend:" in text


class TestSparkline:
    def test_renders_blocks(self):
        s = Series("ramp", list(range(1, 21)), [float(v) for v in range(1, 21)])
        line = sparkline(s)
        assert line.startswith("ramp: [")
        assert "@" in line  # the max renders as the densest block

    def test_constant_series(self):
        s = Series("flat", [1.0, 2.0], [5.0, 5.0])
        assert "flat" in sparkline(s)

    def test_empty_after_log_filter(self):
        s = Series("zero", [1.0], [0.0])
        assert "(empty)" in sparkline(s, logy=True)

    def test_subsamples_long_series(self):
        s = Series("long", list(range(1, 401)), [float(v) for v in range(1, 401)])
        line = sparkline(s, width=40)
        assert len(line) < 60
