"""Integration tests: every executor x every dependence pattern x validation.

These are the repository's end-to-end correctness net: the core library
validates every input of every task, so a passing run proves the executor
scheduled and routed every buffer exactly per the graph specification
(paper §2: "every execution of Task Bench, if it completes successfully, is
correct").
"""

import pytest

from repro.core import (
    DependenceType,
    Kernel,
    KernelType,
    TaskGraph,
    ValidationError,
)
from repro.core.bufpool import as_array
from repro.runtimes import available_runtimes, make_executor

ALL_RUNTIMES = available_runtimes()
ALL_PATTERNS = list(DependenceType)

# 'processes' forks a pool per run and the 'cluster_*' executors fork a
# whole rank mesh; exercise those in their dedicated tests (and the
# conformance suite) rather than in every grid cell to keep the suite fast.
THREADED_RUNTIMES = [
    r for r in ALL_RUNTIMES
    if r != "processes" and not r.startswith("cluster_")
]


def make_graph(pattern, **kw):
    base = dict(
        timesteps=8,
        max_width=5,
        dependence=pattern,
        radix=3,
        fraction_connected=0.5,
        kernel=Kernel(kernel_type=KernelType.COMPUTE_BOUND, iterations=2),
        output_bytes_per_task=16,
    )
    base.update(kw)
    return TaskGraph(**base)


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
@pytest.mark.parametrize("pattern", ALL_PATTERNS)
def test_every_pattern_validates(runtime, pattern):
    g = make_graph(pattern)
    r = make_executor(runtime, workers=2).run([g])
    assert r.total_tasks == g.total_tasks()
    assert r.validated


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_multiple_heterogeneous_graphs(runtime):
    graphs = [
        make_graph(DependenceType.STENCIL_1D, graph_index=0),
        make_graph(DependenceType.FFT, timesteps=5, max_width=8, graph_index=1),
        make_graph(DependenceType.TREE, timesteps=4, graph_index=2),
    ]
    r = make_executor(runtime, workers=3).run(graphs)
    assert r.total_tasks == sum(g.total_tasks() for g in graphs)


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_memory_kernel_with_scratch(runtime):
    g = make_graph(
        DependenceType.STENCIL_1D,
        kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=2, span_bytes=16),
        scratch_bytes_per_task=128,
    )
    r = make_executor(runtime, workers=2).run([g])
    assert r.total_bytes == g.total_bytes() > 0


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_load_imbalance_kernel(runtime):
    g = make_graph(
        DependenceType.NEAREST,
        radix=5,
        kernel=Kernel(
            kernel_type=KernelType.LOAD_IMBALANCE, iterations=20, imbalance=1.0
        ),
    )
    r = make_executor(runtime, workers=2).run([g])
    assert 0 < r.total_flops < g.total_tasks() * 20 * 128


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_single_column_graph(runtime):
    g = make_graph(DependenceType.NO_COMM, max_width=1, timesteps=10)
    r = make_executor(runtime, workers=2).run([g])
    assert r.total_tasks == 10


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_single_timestep_graph(runtime):
    g = make_graph(DependenceType.STENCIL_1D, timesteps=1)
    r = make_executor(runtime, workers=2).run([g])
    assert r.total_tasks == 5


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_more_workers_than_columns(runtime):
    g = make_graph(DependenceType.STENCIL_1D, max_width=2)
    make_executor(runtime, workers=6).run([g])


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_validation_detects_corrupted_producer(runtime, monkeypatch):
    """Corrupt the output of one mid-graph producer: every executor must
    surface the ValidationError raised by its consumers."""
    real = TaskGraph.execute_point

    def corrupting(self, t, i, inputs, scratch=None, validate=True, out=None):
        result = real(self, t, i, inputs, scratch=scratch, validate=validate,
                      out=out)
        if (t, i) == (3, 2):
            buf = as_array(result)
            if buf.nbytes:
                if out is None:
                    buf = buf.copy()
                    buf[0] ^= 0xFF
                    return buf
                buf[0] ^= 0xFF  # pooled path: corrupt the slot in place
        return result

    monkeypatch.setattr(TaskGraph, "execute_point", corrupting)
    g = make_graph(DependenceType.STENCIL_1D)
    with pytest.raises(ValidationError):
        make_executor(runtime, workers=2).run([g])


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_kernel_exception_propagates(runtime, monkeypatch):
    """A kernel crash inside a worker must propagate to the caller, not hang
    the executor."""

    def boom(self, t=0, i=0, scratch=None, seed=0):
        if (t, i) == (2, 1):
            raise RuntimeError("injected kernel failure")

    monkeypatch.setattr(Kernel, "execute", boom)
    g = make_graph(DependenceType.STENCIL_1D)
    with pytest.raises(RuntimeError, match="injected kernel failure"):
        make_executor(runtime, workers=2).run([g])


def test_threads_failure_wakes_blocked_workers(monkeypatch):
    """Regression: the thread pool's ready wait is purely event-driven, so a
    worker failure must broadcast on ready_cv for blocked idle workers to
    wake and exit — here three of four workers are parked on an empty ready
    queue (width-1 chain) when the fourth one's kernel raises."""
    import threading
    import time

    def boom(self, t=0, i=0, scratch=None, seed=0):
        if t == 2:
            raise RuntimeError("injected kernel failure")

    monkeypatch.setattr(Kernel, "execute", boom)
    g = make_graph(DependenceType.STENCIL_1D, max_width=1)
    start = time.perf_counter()
    with pytest.raises(RuntimeError, match="injected kernel failure"):
        make_executor("threads", workers=4).run([g])
    assert time.perf_counter() - start < 2.0  # no polling-timeout stalls
    deadline = time.perf_counter() + 2.0
    while time.perf_counter() < deadline:
        if not any(th.name.startswith("task-worker")
                   for th in threading.enumerate()):
            break
        time.sleep(0.01)
    else:
        raise AssertionError("idle workers never exited after the failure")


@pytest.mark.parametrize("runtime", ALL_RUNTIMES)
def test_run_result_fields(runtime):
    g = make_graph(DependenceType.STENCIL_1D, timesteps=4)
    ex = make_executor(runtime, workers=2)
    try:
        r = ex.run([g])
        assert r.executor == runtime
        assert r.elapsed_seconds > 0
        assert r.cores == ex.cores >= 1
        assert r.total_dependencies == g.total_dependencies()
        assert r.task_granularity_seconds > 0
    finally:
        if hasattr(ex, "close"):
            ex.close()


def test_processes_executor_patterns():
    """Exercise the fork-pool executor once across a few patterns."""
    graphs = [
        make_graph(DependenceType.STENCIL_1D, graph_index=0),
        make_graph(DependenceType.SPREAD, graph_index=1),
    ]
    r = make_executor("processes", workers=2).run(graphs)
    assert r.total_tasks == sum(g.total_tasks() for g in graphs)


def test_processes_memory_kernel():
    g = make_graph(
        DependenceType.STENCIL_1D,
        timesteps=3,
        kernel=Kernel(kernel_type=KernelType.MEMORY_BOUND, iterations=1, span_bytes=8),
        scratch_bytes_per_task=64,
    )
    make_executor("processes", workers=2).run([g])


@pytest.mark.parametrize("runtime", THREADED_RUNTIMES)
def test_validate_flag_skips_checks(runtime):
    g = make_graph(DependenceType.STENCIL_1D)
    r = make_executor(runtime, workers=2).run([g], validate=False)
    assert not r.validated


def test_graph_index_mismatch_rejected():
    g = make_graph(DependenceType.TRIVIAL, graph_index=1)
    with pytest.raises(ValueError, match="graph_index"):
        make_executor("serial").run([g])


def test_empty_graph_list_rejected():
    with pytest.raises(ValueError):
        make_executor("serial").run([])


class TestRegistry:
    def test_all_names_resolve(self):
        for name in available_runtimes():
            ex = make_executor(name, workers=2)
            assert ex.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown runtime"):
            make_executor("slurm")

    def test_expected_runtime_set(self):
        assert set(available_runtimes()) == {
            "serial", "bulk_sync", "p2p", "threads", "processes",
            "shm_processes", "dataflow", "ptg", "actors", "centralized",
            "futures", "asyncio", "cluster_tcp", "cluster_uds",
        }

    def test_kwargs_forwarded(self):
        ex = make_executor("dataflow", workers=2, nb_fields=3)
        assert ex.nb_fields == 3
        ex = make_executor("centralized", workers=2, dispatch_overhead_us=5.0)
        assert ex.dispatch_overhead_us == 5.0

    def test_invalid_worker_counts(self):
        for name in available_runtimes():
            if name == "serial":
                continue
            with pytest.raises(ValueError):
                make_executor(name, workers=0)
