"""Tests for repro.core.envvars — the shared environment-knob validators.

Every TASKBENCH_* knob goes through one validator family; a bad value
must surface as a UsageError with the variable's name and the offending
value, never as a bare ValueError traceback from deep inside the stack.
"""

import pytest

from repro.core.envvars import UsageError, env_float, env_int, env_str

VAR = "TASKBENCH_TEST_KNOB"


class TestEnvStr:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_str(VAR) is None
        assert env_str(VAR, "fallback") == "fallback"

    def test_blank_is_unset(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert env_str(VAR, "fallback") == "fallback"

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv(VAR, "  hello ")
        assert env_str(VAR) == "hello"


class TestEnvInt:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, "42")
        assert env_int(VAR) == 42

    def test_unset_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert env_int(VAR, 7) == 7

    def test_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(VAR, "three")
        with pytest.raises(UsageError, match=rf"{VAR} must be an integer.*'three'"):
            env_int(VAR)

    def test_float_text_rejected(self, monkeypatch):
        monkeypatch.setenv(VAR, "3.5")
        with pytest.raises(UsageError, match="must be an integer"):
            env_int(VAR)

    def test_minimum(self, monkeypatch):
        monkeypatch.setenv(VAR, "-1")
        with pytest.raises(UsageError, match=rf"{VAR} must be >= 0"):
            env_int(VAR, minimum=0)
        monkeypatch.setenv(VAR, "0")
        assert env_int(VAR, minimum=0) == 0

    def test_usage_error_is_value_error(self, monkeypatch):
        # Existing `except ValueError` CLI guards must keep catching these.
        monkeypatch.setenv(VAR, "x")
        with pytest.raises(ValueError):
            env_int(VAR)


class TestEnvFloat:
    def test_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, "2.5")
        assert env_float(VAR) == 2.5

    def test_garbage_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(VAR, "fast")
        with pytest.raises(UsageError, match=rf"{VAR} must be a number.*'fast'"):
            env_float(VAR)

    def test_nan_rejected(self, monkeypatch):
        monkeypatch.setenv(VAR, "nan")
        with pytest.raises(UsageError, match="must be a number"):
            env_float(VAR)

    def test_exclusive_minimum(self, monkeypatch):
        monkeypatch.setenv(VAR, "0")
        with pytest.raises(UsageError, match=rf"{VAR} must be > 0"):
            env_float(VAR, exclusive_minimum=0.0)
        monkeypatch.setenv(VAR, "0.001")
        assert env_float(VAR, exclusive_minimum=0.0) == 0.001

    def test_minimum(self, monkeypatch):
        monkeypatch.setenv(VAR, "0.5")
        with pytest.raises(UsageError, match="must be >= 1"):
            env_float(VAR, minimum=1.0)


class TestWiredKnobs:
    """The production knobs actually route through the validators."""

    def test_timeout_knob(self, monkeypatch):
        from repro.faults import ENV_TIMEOUT, default_timeout

        monkeypatch.setenv(ENV_TIMEOUT, "banana")
        with pytest.raises(UsageError, match="TASKBENCH_TIMEOUT must be a number"):
            default_timeout()

    def test_max_retries_knob(self, monkeypatch):
        from repro.faults import ENV_MAX_RETRIES, default_max_retries

        monkeypatch.setenv(ENV_MAX_RETRIES, "-2")
        with pytest.raises(UsageError, match="TASKBENCH_MAX_RETRIES must be >= 0"):
            default_max_retries()

    def test_peak_flops_knob(self, monkeypatch):
        import repro.metg.runners as runners

        monkeypatch.setattr(runners, "_PEAK_PER_CORE", None)
        monkeypatch.setenv(runners.PEAK_FLOPS_ENV, "not-a-rate")
        with pytest.raises(UsageError, match="TASKBENCH_PEAK_FLOPS must be a number"):
            runners.peak_flops_per_core()

    def test_serve_knobs(self, monkeypatch):
        from repro.serve import ServeConfig

        monkeypatch.setenv("TASKBENCH_SERVE_QUEUE", "lots")
        with pytest.raises(UsageError,
                           match="TASKBENCH_SERVE_QUEUE must be an integer"):
            ServeConfig.from_env()
        monkeypatch.delenv("TASKBENCH_SERVE_QUEUE")
        monkeypatch.setenv("TASKBENCH_SERVE_DEADLINE", "0")
        with pytest.raises(UsageError,
                           match="TASKBENCH_SERVE_DEADLINE must be > 0"):
            ServeConfig.from_env()
        monkeypatch.setenv("TASKBENCH_SERVE_DEADLINE", "2.5")
        monkeypatch.setenv("TASKBENCH_SERVE_JOBS", "3")
        config = ServeConfig.from_env()
        assert config.deadline == 2.5
        assert config.max_jobs == 3

    def test_serve_env_overridden_by_kwargs(self, monkeypatch):
        from repro.serve import ServeConfig

        monkeypatch.setenv("TASKBENCH_SERVE_JOBS", "3")
        config = ServeConfig.from_env(max_jobs=5)
        assert config.max_jobs == 5

    def test_cli_exit_code_2_on_bad_env(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("TASKBENCH_TIMEOUT", "soon")
        code = main(["-steps", "2", "-width", "2", "-type", "trivial",
                     "-runtime", "processes", "-workers", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "TASKBENCH_TIMEOUT" in err
        assert "Traceback" not in err
