"""Property-based tests of the slab buffer pool (the zero-copy data
plane's allocator).

The invariants the data plane rests on:

* two live handles never alias the same memory — a unique fill written
  through one handle is intact when read back through it after arbitrary
  interleaved acquire/release traffic;
* a released handle is *stale*: any later resolve raises
  ``StaleHandleError`` (generation tags), as does releasing it again;
* ``close()`` returns every shared-memory segment to the OS — no
  ``/dev/shm`` leaks, even when slots are still live.

All sequence-driven properties run against both backings (in-heap slabs
for thread executors, ``multiprocessing.shared_memory`` slabs for the
process executors).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bufpool
from repro.core.bufpool import (
    GEN_HEADER_BYTES,
    MAX_SLOTS_PER_SLAB,
    HeapSlabPool,
    PoolClosedError,
    SharedMemorySlabPool,
    SlabPool,
    StaleHandleError,
    as_array,
    size_class,
)

BACKINGS = [HeapSlabPool, SharedMemorySlabPool]


def _fill(ref, token: int) -> None:
    as_array(ref)[:] = np.arange(ref.nbytes, dtype=np.uint64).astype(np.uint8) + token


def _expected(ref, token: int) -> np.ndarray:
    return np.arange(ref.nbytes, dtype=np.uint64).astype(np.uint8) + token


# ----------------------------------------------------------------------
# Size classes
# ----------------------------------------------------------------------
def test_size_class_powers_of_two():
    assert size_class(0) == bufpool.MIN_SLOT_BYTES
    assert size_class(1) == bufpool.MIN_SLOT_BYTES
    for n in (31, 32, 33, 1000, 4096, 65536):
        cap = size_class(n)
        assert cap >= n
        assert cap & (cap - 1) == 0  # power of two
    with pytest.raises(ValueError):
        size_class(-1)


# ----------------------------------------------------------------------
# Sequence-driven aliasing / staleness property
# ----------------------------------------------------------------------
@st.composite
def traffic(draw):
    """A random acquire/release interleaving with payload sizes crossing
    several size classes (including slab-growth boundaries)."""
    steps = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(steps):
        if draw(st.booleans()):
            ops.append(("acquire", draw(st.integers(min_value=0, max_value=9000))))
        else:
            ops.append(("release", draw(st.integers(min_value=0, max_value=10**6))))
    return ops


@pytest.mark.parametrize("backing", BACKINGS)
@settings(max_examples=40, deadline=None)
@given(ops=traffic())
def test_live_handles_never_alias(backing, ops):
    """Under arbitrary acquire/release sequences, every live handle still
    holds exactly the unique pattern written at acquire time, and every
    released handle is stale."""
    with backing() as pool:
        live: list = []  # (ref, token)
        released: list = []
        token = 0
        for op, arg in ops:
            if op == "acquire":
                token += 1
                ref = pool.acquire(arg, refs=1)
                _fill(ref, token)
                live.append((ref, token))
            elif live:
                ref, _ = live.pop(arg % len(live))
                pool.decref(ref)
                released.append(ref)
        for ref, token in live:
            np.testing.assert_array_equal(as_array(ref), _expected(ref, token))
        for ref in released:
            with pytest.raises(StaleHandleError):
                pool.resolve(ref)
            with pytest.raises(StaleHandleError):
                pool.decref(ref)


@pytest.mark.parametrize("backing", BACKINGS)
def test_refcount_lifecycle(backing):
    """A slot stays live until the last reference drops, then recycles to
    a later acquire with a bumped generation."""
    with backing() as pool:
        ref = pool.acquire(100, refs=2)
        assert pool.refcount(ref) == 2
        pool.decref(ref)
        assert pool.refcount(ref) == 1
        pool.incref(ref)
        pool.decref(ref, n=2)
        with pytest.raises(StaleHandleError):
            pool.refcount(ref)
        # The slot recycles: same backing slot, newer generation.
        again = pool.acquire(100)
        assert again.slot == ref.slot
        assert again.generation > ref.generation
        with pytest.raises(StaleHandleError):
            pool.resolve(ref)
        pool.decref(again)


@pytest.mark.parametrize("backing", BACKINGS)
def test_batch_ops_match_singles(backing):
    with backing() as pool:
        refs = pool.acquire_batch(512, [1, 2, 3])
        assert [pool.refcount(r) for r in refs] == [1, 2, 3]
        assert len({r.slot for r in refs}) == 3
        pool.decref_batch(refs)  # drops one ref each
        assert pool.live_slots == 2
        pool.decref_batch(refs[1:])
        pool.decref(refs[2])
        assert pool.live_slots == 0
        with pytest.raises(ValueError):
            pool.acquire_batch(16, [1, 0])


@pytest.mark.parametrize("backing", BACKINGS)
def test_over_release_raises(backing):
    with backing() as pool:
        ref = pool.acquire(64)
        pool.decref(ref)
        with pytest.raises(StaleHandleError):
            pool.decref(ref)


@pytest.mark.parametrize("backing", BACKINGS)
def test_closed_pool_rejects_acquire(backing):
    pool = backing()
    pool.acquire(16)
    pool.close()
    with pytest.raises(PoolClosedError):
        pool.acquire(16)
    pool.close()  # idempotent


@pytest.mark.parametrize("backing", BACKINGS)
def test_slab_growth_bounded(backing):
    """Tiny size classes cap views per slab, so first-touch acquire cost
    stays bounded instead of eagerly carving ~26k views out of a slab."""
    with backing() as pool:
        refs = [pool.acquire(16) for _ in range(MAX_SLOTS_PER_SLAB + 1)]
        assert pool.stats.misses >= 2  # needed a second slab
        assert len({r.slot for r in refs}) == len(refs)
        pool.decref_batch(refs)


# ----------------------------------------------------------------------
# Shared-memory specifics: segment hygiene and cross-snapshot staleness
# ----------------------------------------------------------------------
def _segment_paths(pool: SharedMemorySlabPool) -> list:
    return ["/dev/shm/" + name for name in pool.segment_names]


def test_close_unlinks_every_segment():
    pool = SharedMemorySlabPool()
    refs = [pool.acquire(n) for n in (16, 4096, 100_000)]
    paths = _segment_paths(pool)
    assert paths and all(os.path.exists(p) for p in paths)
    # Close with slots still live: segments must still be returned to the
    # OS (the refcount protocol is the executors' job, not the OS's).
    assert refs
    pool.close()
    assert not any(os.path.exists(p) for p in paths)


@settings(max_examples=15, deadline=None)
@given(sizes=st.lists(st.integers(min_value=0, max_value=70_000), max_size=12))
def test_teardown_leaves_no_shm_segments(sizes):
    before = set(os.listdir("/dev/shm"))
    pool = SharedMemorySlabPool()
    refs = [pool.acquire(n) for n in sizes]
    for ref in refs[::2]:
        pool.decref(ref)
    pool.close()
    leaked = set(os.listdir("/dev/shm")) - before
    assert not leaked


def test_generation_header_lives_in_segment():
    """The generation tag is stored in the shared segment itself, so a
    reader holding a fork-time snapshot of the pool still detects slots
    recycled by the parent afterwards."""
    pool = SharedMemorySlabPool()
    try:
        ref = pool.acquire(64)
        seg = bufpool._attach_untracked(ref.segment)
        try:
            header = bytes(seg.buf[ref.offset - GEN_HEADER_BYTES : ref.offset])
            assert int.from_bytes(header, "little") == ref.generation
            pool.decref(ref)
            header = bytes(seg.buf[ref.offset - GEN_HEADER_BYTES : ref.offset])
            assert int.from_bytes(header, "little") == ref.generation + 1
        finally:
            seg.close()
    finally:
        pool.close()


def test_reserve_prefaults_capacity():
    pool = SharedMemorySlabPool()
    try:
        pool.reserve(4096, 32)
        base = pool.stats.misses
        refs = [pool.acquire(4096) for _ in range(32)]
        assert pool.stats.misses == base  # all hits: capacity pre-reserved
        pool.decref_batch(refs)
    finally:
        pool.close()


def test_heap_refs_do_not_cross_processes():
    """A heap-backed handle is meaningless in another process and must be
    rejected, not silently resolved."""
    import multiprocessing as mp

    pool = HeapSlabPool()
    try:
        ref = pool.acquire(64)

        def child(r, q):
            # Drop the pool registry the way a spawn/exec child would see
            # it: a fresh process without this pool.
            bufpool._POOLS.clear()
            try:
                as_array(r)
                q.put("resolved")
            except StaleHandleError:
                q.put("stale")
            except BaseException as exc:  # pragma: no cover - diagnostics
                q.put(repr(exc))

        ctx = mp.get_context("fork")
        q = ctx.SimpleQueue()
        proc = ctx.Process(target=child, args=(ref, q))
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        assert q.get() == "stale"
        pool.decref(ref)
    finally:
        pool.close()


def test_isinstance_contract():
    for backing in BACKINGS:
        with backing() as pool:
            assert isinstance(pool, SlabPool)
